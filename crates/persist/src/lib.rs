//! On-disk persistence of the analysis memo caches (`expresso-persist`).
//!
//! PRs 1–4 made suite analysis fast *within* a process: the hash-consed
//! arena, the solver's sharded sat/QE/theory verdict caches and the
//! fingerprinted suite-wide [`WpStore`] are all keyed on content — interned
//! formula structure and lowering fingerprints — not on identity. This crate
//! makes that content-addressing outlive the process: it serializes the memo
//! tables into a version-stamped, checksummed artifact and seeds them back
//! before the next run's `analyze_suite` starts, so every `reproduce` run and
//! CI job begins warm.
//!
//! # Why the artifact stores trees, not ids
//!
//! [`FormulaId`](expresso_logic::FormulaId)s are arena-local: they are dense
//! indices minted in interning order and mean nothing in another process. The
//! artifact therefore stores full formula trees (and statement ASTs for the
//! WP keys) and [`seed`] re-interns them through the *receiving* arena. The
//! keys were captured **post-normalization** — the sat/QE tables key on
//! `interner.simplify(..)` images, the theory table on raw interned atoms,
//! the WP store on `(fingerprint, stmt, post-id)` — and every normalization
//! is a deterministic structural function, so re-interning a stored key tree
//! yields exactly the id the warm run's own lookup computes. That is the
//! whole correctness argument: a seeded entry can only be found via a key the
//! cold run proved, and a warm hit returns the bit-identical verdict the warm
//! run would have derived.
//!
//! # Invalidation is content-addressing
//!
//! There is no out-of-band invalidation protocol. Editing one CCR changes its
//! statement AST (and hence its WP keys) and every VC formula built from it
//! (and hence the solver keys); the stale entries simply never match again
//! and only the changed monitor recomputes. The `reproduce persist` harness
//! measures exactly this: after mutating one monitor of a 500-monitor corpus,
//! the warm re-run misses only in that monitor's analysis.
//!
//! # Robustness
//!
//! * **Corruption:** the payload is guarded by a magic, a format version and
//!   an FNV-1a checksum, all verified *before* decoding; a truncated,
//!   bit-flipped or version-mismatched file loads as
//!   [`LoadResult::Corrupt`] and the caller falls back to a cold start with a
//!   warning — never a panic, never a wrong verdict.
//! * **Concurrent writers:** [`save`] writes to a process-unique temp file in
//!   the cache directory and atomically renames it over the artifact, so two
//!   processes sharing one cache directory can never interleave partial
//!   writes; readers always observe a complete artifact (last writer wins).

mod codec;
mod encode;

pub use codec::{checksum, DecodeError};

use codec::{Reader, Writer};
use encode::{
    read_formula, read_opt_type, read_sat_result, read_stmt, read_translate_error, read_wp_error,
    write_formula, write_opt_type, write_sat_result, write_stmt, write_translate_error,
    write_wp_error,
};
use expresso_logic::Formula;
use expresso_monitor_lang::{Stmt, Type};
use expresso_smt::{SatResult, Solver, TheoryVerdict, TranslateError};
use expresso_vcgen::{DisjointnessStore, WpError, WpExportEntry, WpStore};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Default cache directory, relative to the working directory, used when no
/// explicit path is configured (see `ExpressoConfig::cache_dir` and the
/// `EXPRESSO_CACHE_DIR` environment variable in `expresso-core`).
pub const DEFAULT_CACHE_DIR: &str = ".expresso-cache";

/// File name of the artifact inside the cache directory.
pub const ARTIFACT_FILE: &str = "analysis-cache.bin";

const MAGIC: &[u8; 8] = b"XPRESSOC";

/// Format version; bump on any codec or layout change. A mismatch loads as
/// [`LoadResult::Corrupt`] (cold start), never as garbage.
///
/// v2 added the CCR-pair disjointness section (the independence verdicts
/// behind the explorer's refined dependence relation).
pub const FORMAT_VERSION: u32 = 2;

/// A theory verdict in process-independent form: the inconsistent-core atoms
/// are stored as formula trees instead of arena-local ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryVerdictData {
    /// The literal set has an integer model.
    Consistent,
    /// Theory-inconsistent, optionally with its minimal core.
    Inconsistent(Option<Vec<(Formula, bool)>>),
    /// The check left the decidable fragment or exceeded a budget.
    Unknown(String),
}

/// One persisted WP-store entry: the content-addressed key triple plus the
/// memoized result, all in tree form.
#[derive(Debug, Clone, PartialEq)]
pub struct WpArtifactEntry {
    /// The lowering fingerprint — the exact symbol-table slice the statement
    /// reads or writes, which is the dirty-statement invalidation unit: a
    /// type or name change anywhere in this slice re-keys the entry.
    pub fingerprint: Vec<(String, Option<Type>)>,
    /// The statement AST (the second key component).
    pub stmt: Stmt,
    /// The postcondition (the third key component), as a tree.
    pub post: Formula,
    /// The memoized `wp(stmt, post)` result.
    pub result: Result<Formula, WpError>,
}

/// One persisted CCR-pair independence verdict: both sides' guard trees,
/// lowering fingerprints and body ASTs (the content-addressed key), plus the
/// verdict. Any edit to either CCR re-keys the pair, so stale verdicts never
/// match again.
#[derive(Debug, Clone, PartialEq)]
pub struct DisjointnessArtifactEntry {
    /// Lowered guard of the first CCR, as a tree.
    pub guard_a: Formula,
    /// Lowering fingerprint of the first CCR's body.
    pub fingerprint_a: Vec<(String, Option<Type>)>,
    /// Body AST of the first CCR.
    pub body_a: Stmt,
    /// Lowered guard of the second CCR, as a tree.
    pub guard_b: Formula,
    /// Lowering fingerprint of the second CCR's body.
    pub fingerprint_b: Vec<(String, Option<Type>)>,
    /// Body AST of the second CCR.
    pub body_b: Stmt,
    /// Whether the pair was proven conditionally independent.
    pub independent: bool,
}

/// The process-independent snapshot of every memo table, as written to and
/// read from disk.
#[derive(Debug, Clone, Default)]
pub struct Artifact {
    /// Satisfiability verdicts keyed on normalized query trees.
    pub sat: Vec<(Formula, SatResult)>,
    /// Quantifier-elimination results keyed on normalized input trees.
    pub qe: Vec<(Formula, Result<Formula, TranslateError>)>,
    /// Theory-consistency verdicts keyed on sorted literal sets.
    pub theory: Vec<(Vec<(Formula, bool)>, TheoryVerdictData)>,
    /// WP-store entries keyed on `(fingerprint, statement, postcondition)`.
    pub wp: Vec<WpArtifactEntry>,
    /// CCR-pair independence verdicts keyed on both sides' guard + body
    /// content.
    pub disjointness: Vec<DisjointnessArtifactEntry>,
}

impl Artifact {
    /// Total number of entries across every section.
    pub fn len(&self) -> usize {
        self.sat.len() + self.qe.len() + self.theory.len() + self.wp.len() + self.disjointness.len()
    }

    /// Whether the artifact carries no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What [`save`] wrote.
#[derive(Debug, Clone)]
pub struct SaveReport {
    /// Satisfiability entries written.
    pub sat: usize,
    /// Quantifier-elimination entries written.
    pub qe: usize,
    /// Theory-verdict entries written.
    pub theory: usize,
    /// WP-store entries written.
    pub wp: usize,
    /// Disjointness verdicts written.
    pub disjointness: usize,
    /// Size of the artifact file in bytes.
    pub bytes: u64,
    /// Path of the artifact file.
    pub path: PathBuf,
}

/// What [`seed`] inserted into the receiving caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedReport {
    /// Satisfiability entries seeded.
    pub sat: usize,
    /// Quantifier-elimination entries seeded.
    pub qe: usize,
    /// Theory-verdict entries seeded.
    pub theory: usize,
    /// WP-store entries seeded.
    pub wp: usize,
    /// Disjointness verdicts seeded.
    pub disjointness: usize,
}

impl SeedReport {
    /// Total entries seeded across every table.
    pub fn total(&self) -> usize {
        self.sat + self.qe + self.theory + self.wp + self.disjointness
    }
}

impl fmt::Display for SeedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries (sat {}, qe {}, theory {}, wp {}, disjointness {})",
            self.total(),
            self.sat,
            self.qe,
            self.theory,
            self.wp,
            self.disjointness
        )
    }
}

/// Outcome of [`load`].
#[derive(Debug)]
pub enum LoadResult {
    /// A complete, checksum-verified artifact.
    Loaded(Box<Artifact>),
    /// No artifact exists at the path — a plain cold start.
    Absent,
    /// The file exists but is unusable (truncated, bit-flipped, version
    /// mismatch, unreadable). The caller should warn and start cold.
    Corrupt(String),
}

// ---------------------------------------------------------------------------
// Export: memo tables → artifact (ids → trees)
// ---------------------------------------------------------------------------

/// Snapshots the solver's three memo tables, the WP store and the
/// disjointness store into a process-independent [`Artifact`], translating
/// every arena-local id into its formula tree.
pub fn export_artifact(
    solver: &Solver,
    wp_store: &WpStore,
    disjointness: &DisjointnessStore,
) -> Artifact {
    let interner = solver.interner();
    let tree = |id| interner.formula(id);
    Artifact {
        sat: solver
            .export_sat_cache()
            .into_iter()
            .map(|(id, verdict)| (tree(id), verdict))
            .collect(),
        qe: solver
            .export_qe_cache()
            .into_iter()
            .map(|(id, result)| (tree(id), result.map(&tree)))
            .collect(),
        theory: solver
            .export_theory_cache()
            .into_iter()
            .map(|(literals, verdict)| {
                let literals = literals
                    .into_iter()
                    .map(|(id, polarity)| (tree(id), polarity))
                    .collect();
                let verdict = match verdict {
                    TheoryVerdict::Consistent => TheoryVerdictData::Consistent,
                    TheoryVerdict::Inconsistent(core) => TheoryVerdictData::Inconsistent(
                        core.map(|c| c.into_iter().map(|(id, p)| (tree(id), p)).collect()),
                    ),
                    TheoryVerdict::Unknown(reason) => TheoryVerdictData::Unknown(reason),
                };
                (literals, verdict)
            })
            .collect(),
        wp: wp_store
            .export_entries()
            .into_iter()
            .map(|(fingerprint, stmt, post, result)| WpArtifactEntry {
                fingerprint: fingerprint.to_vec(),
                stmt,
                post: tree(post),
                result: result.map(&tree),
            })
            .collect(),
        disjointness: disjointness
            .export_entries()
            .into_iter()
            .map(
                |(ga, fa, ba, gb, fb, bb, independent)| DisjointnessArtifactEntry {
                    guard_a: tree(ga),
                    fingerprint_a: fa.to_vec(),
                    body_a: ba,
                    guard_b: tree(gb),
                    fingerprint_b: fb.to_vec(),
                    body_b: bb,
                    independent,
                },
            )
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Seed: artifact → memo tables (trees → ids, through the receiving arena)
// ---------------------------------------------------------------------------

/// Re-interns every artifact entry through `solver`'s arena and seeds the
/// sharded caches, the WP store and the disjointness store. Entries already
/// present (a live run that got there first) are never overwritten. Returns
/// per-table insert counts.
pub fn seed(
    artifact: &Artifact,
    solver: &Solver,
    wp_store: &WpStore,
    disjointness: &DisjointnessStore,
) -> SeedReport {
    let _span = expresso_obs::span!("persist.seed");
    let interner = solver.interner();
    let intern = |f: &Formula| interner.intern(f);
    SeedReport {
        sat: solver.seed_sat_cache(
            artifact
                .sat
                .iter()
                .map(|(key, verdict)| (intern(key), verdict.clone()))
                .collect(),
        ),
        qe: solver.seed_qe_cache(
            artifact
                .qe
                .iter()
                .map(|(key, result)| {
                    (
                        intern(key),
                        result.as_ref().map(&intern).map_err(Clone::clone),
                    )
                })
                .collect(),
        ),
        theory: solver.seed_theory_cache(
            artifact
                .theory
                .iter()
                .map(|(literals, verdict)| {
                    // The DPLL(T) loop sorts + dedups its key by id, and id
                    // order is arena-local — re-sort after re-interning.
                    let mut key: Vec<_> = literals.iter().map(|(f, p)| (intern(f), *p)).collect();
                    key.sort_unstable();
                    key.dedup();
                    let verdict = match verdict {
                        TheoryVerdictData::Consistent => TheoryVerdict::Consistent,
                        TheoryVerdictData::Inconsistent(core) => TheoryVerdict::Inconsistent(
                            core.as_ref()
                                .map(|c| c.iter().map(|(f, p)| (intern(f), *p)).collect()),
                        ),
                        TheoryVerdictData::Unknown(reason) => {
                            TheoryVerdict::Unknown(reason.clone())
                        }
                    };
                    (key, verdict)
                })
                .collect(),
        ),
        wp: wp_store.seed_entries(
            artifact
                .wp
                .iter()
                .map(|entry| -> WpExportEntry {
                    (
                        entry.fingerprint.clone().into(),
                        entry.stmt.clone(),
                        intern(&entry.post),
                        entry.result.as_ref().map(&intern).map_err(Clone::clone),
                    )
                })
                .collect(),
        ),
        disjointness: disjointness.seed_entries(
            artifact
                .disjointness
                .iter()
                .map(|entry| {
                    (
                        intern(&entry.guard_a),
                        entry.fingerprint_a.clone().into(),
                        entry.body_a.clone(),
                        intern(&entry.guard_b),
                        entry.fingerprint_b.clone().into(),
                        entry.body_b.clone(),
                        entry.independent,
                    )
                })
                .collect(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Binary layout
// ---------------------------------------------------------------------------

fn encode_artifact(artifact: &Artifact) -> Vec<u8> {
    // Encode each entry to its own buffer and sort the section bytewise:
    // the memo tables iterate in nondeterministic HashMap order, and a
    // canonical artifact makes repeated saves of the same caches
    // byte-identical (stable checksums, diffable trajectories).
    fn section(entries: Vec<Vec<u8>>, payload: &mut Writer) {
        let mut entries = entries;
        entries.sort_unstable();
        entries.dedup();
        payload.seq(entries.len());
        entries.iter().for_each(|e| payload.raw(e));
    }

    let mut payload = Writer::new();
    section(
        artifact
            .sat
            .iter()
            .map(|(key, verdict)| {
                let mut w = Writer::new();
                write_formula(&mut w, key);
                write_sat_result(&mut w, verdict);
                w.into_bytes()
            })
            .collect(),
        &mut payload,
    );
    section(
        artifact
            .qe
            .iter()
            .map(|(key, result)| {
                let mut w = Writer::new();
                write_formula(&mut w, key);
                match result {
                    Ok(f) => {
                        w.u8(0);
                        write_formula(&mut w, f);
                    }
                    Err(e) => {
                        w.u8(1);
                        write_translate_error(&mut w, e);
                    }
                }
                w.into_bytes()
            })
            .collect(),
        &mut payload,
    );
    section(
        artifact
            .theory
            .iter()
            .map(|(literals, verdict)| {
                let mut w = Writer::new();
                // The in-memory key is sorted by arena-local id, which
                // differs between the arena that computed an entry and one
                // that was seeded with it; canonicalize on the literals'
                // encoded bytes so equal semantic keys serialize equally
                // (re-saving a warm context reproduces the artifact
                // byte-for-byte).
                let mut encoded: Vec<Vec<u8>> = literals
                    .iter()
                    .map(|(f, p)| {
                        let mut lw = Writer::new();
                        write_formula(&mut lw, f);
                        lw.bool(*p);
                        lw.into_bytes()
                    })
                    .collect();
                encoded.sort_unstable();
                w.seq(encoded.len());
                encoded.iter().for_each(|l| w.raw(l));
                match verdict {
                    TheoryVerdictData::Consistent => w.u8(0),
                    TheoryVerdictData::Inconsistent(core) => {
                        w.u8(1);
                        match core {
                            None => w.u8(0),
                            Some(core) => {
                                w.u8(1);
                                w.seq(core.len());
                                for (f, p) in core {
                                    write_formula(&mut w, f);
                                    w.bool(*p);
                                }
                            }
                        }
                    }
                    TheoryVerdictData::Unknown(reason) => {
                        w.u8(2);
                        w.str(reason);
                    }
                }
                w.into_bytes()
            })
            .collect(),
        &mut payload,
    );
    section(
        artifact
            .wp
            .iter()
            .map(|entry| {
                let mut w = Writer::new();
                w.seq(entry.fingerprint.len());
                for (name, ty) in &entry.fingerprint {
                    w.str(name);
                    write_opt_type(&mut w, *ty);
                }
                write_stmt(&mut w, &entry.stmt);
                write_formula(&mut w, &entry.post);
                match &entry.result {
                    Ok(f) => {
                        w.u8(0);
                        write_formula(&mut w, f);
                    }
                    Err(e) => {
                        w.u8(1);
                        write_wp_error(&mut w, e);
                    }
                }
                w.into_bytes()
            })
            .collect(),
        &mut payload,
    );
    section(
        artifact
            .disjointness
            .iter()
            .map(|entry| {
                let mut w = Writer::new();
                write_formula(&mut w, &entry.guard_a);
                w.seq(entry.fingerprint_a.len());
                for (name, ty) in &entry.fingerprint_a {
                    w.str(name);
                    write_opt_type(&mut w, *ty);
                }
                write_stmt(&mut w, &entry.body_a);
                write_formula(&mut w, &entry.guard_b);
                w.seq(entry.fingerprint_b.len());
                for (name, ty) in &entry.fingerprint_b {
                    w.str(name);
                    write_opt_type(&mut w, *ty);
                }
                write_stmt(&mut w, &entry.body_b);
                w.bool(entry.independent);
                w.into_bytes()
            })
            .collect(),
        &mut payload,
    );

    let payload = payload.into_bytes();
    let mut file = Writer::new();
    file.raw(MAGIC);
    file.u32(FORMAT_VERSION);
    file.u64(payload.len() as u64);
    file.raw(&payload);
    file.u64(checksum(&payload));
    file.into_bytes()
}

fn decode_artifact(payload: &[u8]) -> Result<Artifact, DecodeError> {
    let mut r = Reader::new(payload);
    let mut artifact = Artifact::default();
    for _ in 0..r.seq()? {
        let key = read_formula(&mut r)?;
        let verdict = read_sat_result(&mut r)?;
        artifact.sat.push((key, verdict));
    }
    for _ in 0..r.seq()? {
        let key = read_formula(&mut r)?;
        let result = match r.u8()? {
            0 => Ok(read_formula(&mut r)?),
            1 => Err(read_translate_error(&mut r)?),
            other => return codec::err(format!("invalid result tag {other}")),
        };
        artifact.qe.push((key, result));
    }
    for _ in 0..r.seq()? {
        let n = r.seq()?;
        let mut literals = Vec::with_capacity(n);
        for _ in 0..n {
            let f = read_formula(&mut r)?;
            let p = r.bool()?;
            literals.push((f, p));
        }
        let verdict = match r.u8()? {
            0 => TheoryVerdictData::Consistent,
            1 => TheoryVerdictData::Inconsistent(match r.u8()? {
                0 => None,
                1 => {
                    let n = r.seq()?;
                    let mut core = Vec::with_capacity(n);
                    for _ in 0..n {
                        let f = read_formula(&mut r)?;
                        let p = r.bool()?;
                        core.push((f, p));
                    }
                    Some(core)
                }
                other => return codec::err(format!("invalid option tag {other}")),
            }),
            2 => TheoryVerdictData::Unknown(r.str()?),
            other => return codec::err(format!("invalid theory-verdict tag {other}")),
        };
        artifact.theory.push((literals, verdict));
    }
    for _ in 0..r.seq()? {
        let n = r.seq()?;
        let mut fingerprint = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let ty = read_opt_type(&mut r)?;
            fingerprint.push((name, ty));
        }
        let stmt = read_stmt(&mut r)?;
        let post = read_formula(&mut r)?;
        let result = match r.u8()? {
            0 => Ok(read_formula(&mut r)?),
            1 => Err(read_wp_error(&mut r)?),
            other => return codec::err(format!("invalid result tag {other}")),
        };
        artifact.wp.push(WpArtifactEntry {
            fingerprint,
            stmt,
            post,
            result,
        });
    }
    for _ in 0..r.seq()? {
        let side = |r: &mut Reader| -> Result<_, DecodeError> {
            let guard = read_formula(r)?;
            let n = r.seq()?;
            let mut fingerprint = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.str()?;
                let ty = read_opt_type(r)?;
                fingerprint.push((name, ty));
            }
            let body = read_stmt(r)?;
            Ok((guard, fingerprint, body))
        };
        let (guard_a, fingerprint_a, body_a) = side(&mut r)?;
        let (guard_b, fingerprint_b, body_b) = side(&mut r)?;
        let independent = r.bool()?;
        artifact.disjointness.push(DisjointnessArtifactEntry {
            guard_a,
            fingerprint_a,
            body_a,
            guard_b,
            fingerprint_b,
            body_b,
            independent,
        });
    }
    if !r.is_empty() {
        return codec::err("trailing bytes after last section");
    }
    Ok(artifact)
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// Path of the artifact file inside `dir`.
pub fn artifact_path(dir: &Path) -> PathBuf {
    dir.join(ARTIFACT_FILE)
}

/// Serializes `artifact` into `dir`, creating the directory if needed.
///
/// The bytes are written to a process-unique temp file in the same directory
/// and atomically renamed over the artifact, so concurrent writers sharing
/// one cache directory never interleave partial writes (last writer wins)
/// and readers never observe a torn file.
pub fn save_artifact(dir: &Path, artifact: &Artifact) -> io::Result<(u64, PathBuf)> {
    fs::create_dir_all(dir)?;
    let bytes = encode_artifact(artifact);
    let final_path = artifact_path(dir);
    let tmp_path = dir.join(format!(".{}.tmp.{}", ARTIFACT_FILE, std::process::id()));
    fs::write(&tmp_path, &bytes)?;
    match fs::rename(&tmp_path, &final_path) {
        Ok(()) => Ok((bytes.len() as u64, final_path)),
        Err(e) => {
            let _ = fs::remove_file(&tmp_path);
            Err(e)
        }
    }
}

/// Exports the caches of `solver`, `wp_store` and `disjointness` and writes
/// them to `dir`.
pub fn save(
    dir: &Path,
    solver: &Solver,
    wp_store: &WpStore,
    disjointness: &DisjointnessStore,
) -> io::Result<SaveReport> {
    let _span = expresso_obs::span!("persist.save");
    let artifact = export_artifact(solver, wp_store, disjointness);
    let (bytes, path) = save_artifact(dir, &artifact)?;
    expresso_obs::log!(
        expresso_obs::Level::Debug,
        "saved warm-start artifact to {path:?}: {bytes} bytes ({} sat, {} qe, {} theory, {} wp, {} disjointness entries)",
        artifact.sat.len(),
        artifact.qe.len(),
        artifact.theory.len(),
        artifact.wp.len(),
        artifact.disjointness.len()
    );
    Ok(SaveReport {
        sat: artifact.sat.len(),
        qe: artifact.qe.len(),
        theory: artifact.theory.len(),
        wp: artifact.wp.len(),
        disjointness: artifact.disjointness.len(),
        bytes,
        path,
    })
}

/// Loads the artifact from `dir`.
///
/// Magic, format version, payload length and checksum are all verified
/// *before* any tree is decoded; every malformation — including a file that
/// passes the header checks but trips a decoder — comes back as
/// [`LoadResult::Corrupt`] rather than a panic or a silently wrong entry.
pub fn load(dir: &Path) -> LoadResult {
    let _span = expresso_obs::span!("persist.load");
    let path = artifact_path(dir);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            expresso_obs::log!(
                expresso_obs::Level::Debug,
                "no warm-start artifact at {path:?}, starting cold"
            );
            return LoadResult::Absent;
        }
        Err(e) => return LoadResult::Corrupt(format!("unreadable artifact {path:?}: {e}")),
    };
    let header_len = MAGIC.len() + 4 + 8;
    if bytes.len() < header_len + 8 {
        return LoadResult::Corrupt(format!(
            "artifact {path:?} too short ({} bytes)",
            bytes.len()
        ));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return LoadResult::Corrupt(format!("artifact {path:?} has wrong magic"));
    }
    let mut header = Reader::new(&bytes[MAGIC.len()..header_len]);
    let version = header.u32().expect("header length checked");
    if version != FORMAT_VERSION {
        return LoadResult::Corrupt(format!(
            "artifact {path:?} has format version {version}, expected {FORMAT_VERSION}"
        ));
    }
    let payload_len = header.u64().expect("header length checked") as usize;
    if bytes.len() != header_len + payload_len + 8 {
        return LoadResult::Corrupt(format!(
            "artifact {path:?} length mismatch: header claims {payload_len} payload bytes, file has {}",
            bytes.len() - header_len - 8.min(bytes.len() - header_len)
        ));
    }
    let payload = &bytes[header_len..header_len + payload_len];
    let stored = u64::from_le_bytes(bytes[header_len + payload_len..].try_into().unwrap());
    if checksum(payload) != stored {
        return LoadResult::Corrupt(format!("artifact {path:?} failed its checksum"));
    }
    match decode_artifact(payload) {
        Ok(artifact) => LoadResult::Loaded(Box::new(artifact)),
        Err(e) => LoadResult::Corrupt(format!("artifact {path:?}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_logic::{CmpOp, Term};

    fn sample_artifact() -> Artifact {
        let guard = Formula::Cmp(CmpOp::Lt, Term::Var("count".into()), Term::Int(4));
        let nonneg = Formula::Cmp(CmpOp::Ge, Term::Var("count".into()), Term::Int(0));
        Artifact {
            sat: vec![
                (guard.clone(), SatResult::Unsat),
                (nonneg.clone(), SatResult::Sat(None)),
            ],
            qe: vec![(
                Formula::exists(vec!["x".into()], guard.clone()),
                Ok(Formula::True),
            )],
            theory: vec![(
                vec![(guard.clone(), true), (nonneg.clone(), false)],
                TheoryVerdictData::Inconsistent(Some(vec![(nonneg, false)])),
            )],
            wp: vec![WpArtifactEntry {
                fingerprint: vec![("count".into(), Some(Type::Int))],
                stmt: Stmt::Assign(
                    "count".into(),
                    expresso_monitor_lang::parse_expr("count + 1").unwrap(),
                ),
                post: guard.clone(),
                result: Ok(Formula::Cmp(
                    CmpOp::Lt,
                    Term::Var("count".into()),
                    Term::Int(3),
                )),
            }],
            disjointness: vec![DisjointnessArtifactEntry {
                guard_a: guard,
                fingerprint_a: vec![("count".into(), Some(Type::Int))],
                body_a: Stmt::Assign(
                    "count".into(),
                    expresso_monitor_lang::parse_expr("count + 1").unwrap(),
                ),
                guard_b: Formula::True,
                fingerprint_b: vec![("count".into(), Some(Type::Int))],
                body_b: Stmt::Assign(
                    "count".into(),
                    expresso_monitor_lang::parse_expr("count - 1").unwrap(),
                ),
                independent: true,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let artifact = sample_artifact();
        let bytes = encode_artifact(&artifact);
        let header_len = MAGIC.len() + 4 + 8;
        let payload = &bytes[header_len..bytes.len() - 8];
        let decoded = decode_artifact(payload).unwrap();
        assert_eq!(decoded.len(), artifact.len());
        // Sections are sorted on encode; compare as sets.
        for (key, verdict) in &artifact.sat {
            assert!(decoded.sat.iter().any(|(k, v)| k == key && v == verdict));
        }
        assert_eq!(decoded.wp[0], artifact.wp[0]);
        assert_eq!(decoded.disjointness[0], artifact.disjointness[0]);
    }

    #[test]
    fn encoding_is_deterministic_regardless_of_entry_order() {
        let mut reversed = sample_artifact();
        reversed.sat.reverse();
        assert_eq!(
            encode_artifact(&sample_artifact()),
            encode_artifact(&reversed)
        );
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("xp-persist-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let artifact = sample_artifact();
        let (bytes, path) = save_artifact(&dir, &artifact).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), bytes);
        match load(&dir) {
            LoadResult::Loaded(loaded) => assert_eq!(loaded.len(), artifact.len()),
            other => panic!("expected Loaded, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_artifact_loads_as_absent() {
        let dir = std::env::temp_dir().join(format!("xp-persist-absent-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(matches!(load(&dir), LoadResult::Absent));
    }

    #[test]
    fn truncated_artifact_is_corrupt_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("xp-persist-trunc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        save_artifact(&dir, &sample_artifact()).unwrap();
        let path = artifact_path(&dir);
        let bytes = fs::read(&path).unwrap();
        for keep in [0, 5, MAGIC.len() + 4 + 8 + 3, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                matches!(load(&dir), LoadResult::Corrupt(_)),
                "truncation to {keep} bytes must be detected"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let dir = std::env::temp_dir().join(format!("xp-persist-flip-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        save_artifact(&dir, &sample_artifact()).unwrap();
        let path = artifact_path(&dir);
        let bytes = fs::read(&path).unwrap();
        // Flip one bit in every byte position: header flips break the magic/
        // version/length checks, payload flips break the checksum, trailer
        // flips break the stored checksum itself.
        for i in 0..bytes.len() {
            let mut mangled = bytes.clone();
            mangled[i] ^= 0x10;
            fs::write(&path, &mangled).unwrap();
            assert!(
                matches!(load(&dir), LoadResult::Corrupt(_)),
                "bit flip at byte {i} must be detected"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_corrupt() {
        let dir = std::env::temp_dir().join(format!("xp-persist-ver-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        save_artifact(&dir, &sample_artifact()).unwrap();
        let path = artifact_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        match load(&dir) {
            LoadResult::Corrupt(msg) => assert!(msg.contains("format version")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seed_round_trips_through_a_fresh_arena() {
        // Fill a solver's caches by solving, export, then seed a *fresh*
        // solver (fresh arena — ids cannot survive) and check the entry
        // counts and a served verdict.
        let cold = Solver::new();
        let store = WpStore::new(true);
        let disjointness = DisjointnessStore::new();
        let guard = Formula::Cmp(CmpOp::Lt, Term::Var("count".into()), Term::Int(4));
        let contradiction = Formula::And(vec![
            guard.clone(),
            Formula::Cmp(CmpOp::Gt, Term::Var("count".into()), Term::Int(9)),
        ]);
        assert!(cold.check_sat(&contradiction).is_unsat());
        assert!(cold.check_sat(&guard).is_sat());
        let artifact = export_artifact(&cold, &store, &disjointness);
        assert!(!artifact.sat.is_empty());

        let warm = Solver::new();
        let warm_store = WpStore::new(true);
        let warm_disjointness = DisjointnessStore::new();
        let report = seed(&artifact, &warm, &warm_store, &warm_disjointness);
        assert_eq!(report.sat, artifact.sat.len());
        assert!(warm.check_sat(&contradiction).is_unsat());
        assert!(
            warm.stats().disk_hits > 0,
            "warm query must hit a seeded entry"
        );
        assert_eq!(
            warm.stats().sat_solver_calls,
            0,
            "warm query must not re-solve"
        );
    }
}

//! Byte-level primitives of the artifact format: a little-endian writer, a
//! bounds-checked reader and the FNV-1a payload checksum.
//!
//! Everything is hand-rolled on `std` — the workspace carries no serde — and
//! deliberately boring: fixed-width little-endian integers, length-prefixed
//! strings and sequences, one-byte tags for enums. The reader never panics on
//! malformed input; every failure is a [`DecodeError`] the artifact loader
//! turns into a cold start.

use std::fmt;

/// A decoding failure (truncation, invalid tag, bad UTF-8, …). The loader
/// reports it and falls back to a cold start; it is never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed cache artifact: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

pub(crate) fn err<T>(message: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError(message.into()))
}

/// FNV-1a 64-bit hash over `bytes` — the artifact's payload checksum. Not
/// cryptographic; it guards against truncation and bit rot, not adversaries.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Length prefix of a sequence whose items the caller writes next.
    pub fn seq(&mut self, len: usize) {
        self.u32(len as u32);
    }

    /// Raw bytes of an already-encoded entry (used when assembling sorted
    /// sections from per-entry buffers).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian byte source over a borrowed payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| DecodeError(format!("truncated: wanted {n} bytes at {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => err(format!("invalid bool byte {other}")),
        }
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("invalid UTF-8".into()))
    }

    /// Reads a sequence length, sanity-capped against the remaining payload
    /// so a corrupt length cannot trigger a huge allocation.
    pub fn seq(&mut self) -> Result<usize, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.buf.len().saturating_sub(self.pos) {
            return err(format!("sequence length {len} exceeds remaining payload"));
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = &w.into_bytes()[..5];
        let mut r = Reader::new(bytes);
        assert!(r.u64().is_err());
    }

    #[test]
    fn oversized_sequence_length_is_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.seq().is_err());
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut r = Reader::new(&[3]);
        assert!(r.bool().is_err());
    }

    #[test]
    fn checksum_changes_on_any_bit_flip() {
        let data = b"expresso artifact payload";
        let base = checksum(data);
        for i in 0..data.len() {
            let mut flipped = data.to_vec();
            flipped[i] ^= 1;
            assert_ne!(checksum(&flipped), base, "flip at byte {i}");
        }
    }
}

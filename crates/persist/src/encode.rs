//! Tree codecs: formulas, terms, statements, expressions, verdicts and the
//! error enums that appear inside cached values.
//!
//! Every enum is encoded as a one-byte tag followed by its fields in
//! declaration order. The decoders mirror the encoders exactly; an unknown
//! tag is a [`DecodeError`], never a panic, so a schema drift that slips past
//! the format version check still degrades to a cold start.

use crate::codec::{err, DecodeError, Reader, Writer};
use expresso_logic::{CmpOp, Formula, Quantifier, Term, Valuation};
use expresso_monitor_lang::{BinOp, Expr, LowerError, Stmt, Type, UnOp};
use expresso_smt::{SatResult, SolverError, TranslateError};
use expresso_vcgen::WpError;

// ---------------------------------------------------------------------------
// Terms and formulas
// ---------------------------------------------------------------------------

pub fn write_term(w: &mut Writer, term: &Term) {
    match term {
        Term::Int(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Term::Var(name) => {
            w.u8(1);
            w.str(name);
        }
        Term::Add(parts) => {
            w.u8(2);
            w.seq(parts.len());
            parts.iter().for_each(|p| write_term(w, p));
        }
        Term::Sub(a, b) => {
            w.u8(3);
            write_term(w, a);
            write_term(w, b);
        }
        Term::Neg(a) => {
            w.u8(4);
            write_term(w, a);
        }
        Term::Mul(a, b) => {
            w.u8(5);
            write_term(w, a);
            write_term(w, b);
        }
        Term::Select(array, index) => {
            w.u8(6);
            w.str(array);
            write_term(w, index);
        }
    }
}

pub fn read_term(r: &mut Reader) -> Result<Term, DecodeError> {
    Ok(match r.u8()? {
        0 => Term::Int(r.i64()?),
        1 => Term::Var(r.str()?),
        2 => {
            let n = r.seq()?;
            Term::Add((0..n).map(|_| read_term(r)).collect::<Result<_, _>>()?)
        }
        3 => Term::Sub(Box::new(read_term(r)?), Box::new(read_term(r)?)),
        4 => Term::Neg(Box::new(read_term(r)?)),
        5 => Term::Mul(Box::new(read_term(r)?), Box::new(read_term(r)?)),
        6 => Term::Select(r.str()?, Box::new(read_term(r)?)),
        other => return err(format!("invalid term tag {other}")),
    })
}

fn write_cmp_op(w: &mut Writer, op: CmpOp) {
    w.u8(match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    });
}

fn read_cmp_op(r: &mut Reader) -> Result<CmpOp, DecodeError> {
    Ok(match r.u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        other => return err(format!("invalid comparison tag {other}")),
    })
}

pub fn write_formula(w: &mut Writer, formula: &Formula) {
    match formula {
        Formula::True => w.u8(0),
        Formula::False => w.u8(1),
        Formula::BoolVar(name) => {
            w.u8(2);
            w.str(name);
        }
        Formula::Cmp(op, lhs, rhs) => {
            w.u8(3);
            write_cmp_op(w, *op);
            write_term(w, lhs);
            write_term(w, rhs);
        }
        Formula::Divides(d, t) => {
            w.u8(4);
            w.u64(*d);
            write_term(w, t);
        }
        Formula::Not(inner) => {
            w.u8(5);
            write_formula(w, inner);
        }
        Formula::And(parts) => {
            w.u8(6);
            w.seq(parts.len());
            parts.iter().for_each(|p| write_formula(w, p));
        }
        Formula::Or(parts) => {
            w.u8(7);
            w.seq(parts.len());
            parts.iter().for_each(|p| write_formula(w, p));
        }
        Formula::Implies(p, q) => {
            w.u8(8);
            write_formula(w, p);
            write_formula(w, q);
        }
        Formula::Iff(p, q) => {
            w.u8(9);
            write_formula(w, p);
            write_formula(w, q);
        }
        Formula::Quant(q, vars, body) => {
            w.u8(10);
            w.u8(match q {
                Quantifier::Forall => 0,
                Quantifier::Exists => 1,
            });
            w.seq(vars.len());
            vars.iter().for_each(|v| w.str(v));
            write_formula(w, body);
        }
    }
}

pub fn read_formula(r: &mut Reader) -> Result<Formula, DecodeError> {
    Ok(match r.u8()? {
        0 => Formula::True,
        1 => Formula::False,
        2 => Formula::BoolVar(r.str()?),
        3 => Formula::Cmp(read_cmp_op(r)?, read_term(r)?, read_term(r)?),
        4 => Formula::Divides(r.u64()?, read_term(r)?),
        5 => Formula::Not(Box::new(read_formula(r)?)),
        6 => {
            let n = r.seq()?;
            Formula::And((0..n).map(|_| read_formula(r)).collect::<Result<_, _>>()?)
        }
        7 => {
            let n = r.seq()?;
            Formula::Or((0..n).map(|_| read_formula(r)).collect::<Result<_, _>>()?)
        }
        8 => Formula::Implies(Box::new(read_formula(r)?), Box::new(read_formula(r)?)),
        9 => Formula::Iff(Box::new(read_formula(r)?), Box::new(read_formula(r)?)),
        10 => {
            let q = match r.u8()? {
                0 => Quantifier::Forall,
                1 => Quantifier::Exists,
                other => return err(format!("invalid quantifier tag {other}")),
            };
            let n = r.seq()?;
            let vars = (0..n).map(|_| r.str()).collect::<Result<_, _>>()?;
            Formula::Quant(q, vars, Box::new(read_formula(r)?))
        }
        other => return err(format!("invalid formula tag {other}")),
    })
}

// ---------------------------------------------------------------------------
// Statements and expressions (WP-store keys)
// ---------------------------------------------------------------------------

fn write_type(w: &mut Writer, ty: Type) {
    w.u8(match ty {
        Type::Int => 0,
        Type::Bool => 1,
        Type::IntArray => 2,
    });
}

fn read_type(r: &mut Reader) -> Result<Type, DecodeError> {
    Ok(match r.u8()? {
        0 => Type::Int,
        1 => Type::Bool,
        2 => Type::IntArray,
        other => return err(format!("invalid type tag {other}")),
    })
}

pub fn write_opt_type(w: &mut Writer, ty: Option<Type>) {
    match ty {
        None => w.u8(0),
        Some(ty) => {
            w.u8(1);
            write_type(w, ty);
        }
    }
}

pub fn read_opt_type(r: &mut Reader) -> Result<Option<Type>, DecodeError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(read_type(r)?),
        other => return err(format!("invalid option tag {other}")),
    })
}

fn write_un_op(w: &mut Writer, op: UnOp) {
    w.u8(match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
    });
}

fn read_un_op(r: &mut Reader) -> Result<UnOp, DecodeError> {
    Ok(match r.u8()? {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        other => return err(format!("invalid unary-op tag {other}")),
    })
}

fn write_bin_op(w: &mut Writer, op: BinOp) {
    w.u8(match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Rem => 3,
        BinOp::Eq => 4,
        BinOp::Ne => 5,
        BinOp::Lt => 6,
        BinOp::Le => 7,
        BinOp::Gt => 8,
        BinOp::Ge => 9,
        BinOp::And => 10,
        BinOp::Or => 11,
    });
}

fn read_bin_op(r: &mut Reader) -> Result<BinOp, DecodeError> {
    Ok(match r.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Rem,
        4 => BinOp::Eq,
        5 => BinOp::Ne,
        6 => BinOp::Lt,
        7 => BinOp::Le,
        8 => BinOp::Gt,
        9 => BinOp::Ge,
        10 => BinOp::And,
        11 => BinOp::Or,
        other => return err(format!("invalid binary-op tag {other}")),
    })
}

pub fn write_expr(w: &mut Writer, expr: &Expr) {
    match expr {
        Expr::Int(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Expr::Bool(v) => {
            w.u8(1);
            w.bool(*v);
        }
        Expr::Var(name) => {
            w.u8(2);
            w.str(name);
        }
        Expr::Index(array, index) => {
            w.u8(3);
            w.str(array);
            write_expr(w, index);
        }
        Expr::Unary(op, inner) => {
            w.u8(4);
            write_un_op(w, *op);
            write_expr(w, inner);
        }
        Expr::Binary(op, lhs, rhs) => {
            w.u8(5);
            write_bin_op(w, *op);
            write_expr(w, lhs);
            write_expr(w, rhs);
        }
    }
}

pub fn read_expr(r: &mut Reader) -> Result<Expr, DecodeError> {
    Ok(match r.u8()? {
        0 => Expr::Int(r.i64()?),
        1 => Expr::Bool(r.bool()?),
        2 => Expr::Var(r.str()?),
        3 => Expr::Index(r.str()?, Box::new(read_expr(r)?)),
        4 => Expr::Unary(read_un_op(r)?, Box::new(read_expr(r)?)),
        5 => Expr::Binary(
            read_bin_op(r)?,
            Box::new(read_expr(r)?),
            Box::new(read_expr(r)?),
        ),
        other => return err(format!("invalid expression tag {other}")),
    })
}

pub fn write_stmt(w: &mut Writer, stmt: &Stmt) {
    match stmt {
        Stmt::Skip => w.u8(0),
        Stmt::Seq(parts) => {
            w.u8(1);
            w.seq(parts.len());
            parts.iter().for_each(|s| write_stmt(w, s));
        }
        Stmt::Assign(name, expr) => {
            w.u8(2);
            w.str(name);
            write_expr(w, expr);
        }
        Stmt::ArrayAssign(name, index, value) => {
            w.u8(3);
            w.str(name);
            write_expr(w, index);
            write_expr(w, value);
        }
        Stmt::Local(name, ty, init) => {
            w.u8(4);
            w.str(name);
            write_type(w, *ty);
            write_expr(w, init);
        }
        Stmt::If(cond, then_branch, else_branch) => {
            w.u8(5);
            write_expr(w, cond);
            write_stmt(w, then_branch);
            write_stmt(w, else_branch);
        }
        Stmt::While(cond, body) => {
            w.u8(6);
            write_expr(w, cond);
            write_stmt(w, body);
        }
    }
}

pub fn read_stmt(r: &mut Reader) -> Result<Stmt, DecodeError> {
    Ok(match r.u8()? {
        0 => Stmt::Skip,
        1 => {
            let n = r.seq()?;
            Stmt::Seq((0..n).map(|_| read_stmt(r)).collect::<Result<_, _>>()?)
        }
        2 => Stmt::Assign(r.str()?, read_expr(r)?),
        3 => Stmt::ArrayAssign(r.str()?, read_expr(r)?, read_expr(r)?),
        4 => Stmt::Local(r.str()?, read_type(r)?, read_expr(r)?),
        5 => Stmt::If(
            read_expr(r)?,
            Box::new(read_stmt(r)?),
            Box::new(read_stmt(r)?),
        ),
        6 => Stmt::While(read_expr(r)?, Box::new(read_stmt(r)?)),
        other => return err(format!("invalid statement tag {other}")),
    })
}

// ---------------------------------------------------------------------------
// Cached values: verdicts, models and error enums
// ---------------------------------------------------------------------------

pub fn write_valuation(w: &mut Writer, v: &Valuation) {
    // Sort each map so the encoding of a valuation is deterministic.
    let mut ints: Vec<_> = v.ints().collect();
    ints.sort();
    w.seq(ints.len());
    for (name, value) in ints {
        w.str(name);
        w.i64(*value);
    }
    let mut bools: Vec<_> = v.bools().collect();
    bools.sort();
    w.seq(bools.len());
    for (name, value) in bools {
        w.str(name);
        w.bool(*value);
    }
    let mut arrays: Vec<_> = v.arrays().collect();
    arrays.sort();
    w.seq(arrays.len());
    for (name, values) in arrays {
        w.str(name);
        w.seq(values.len());
        values.iter().for_each(|&x| w.i64(x));
    }
}

pub fn read_valuation(r: &mut Reader) -> Result<Valuation, DecodeError> {
    let mut v = Valuation::new();
    for _ in 0..r.seq()? {
        let name = r.str()?;
        let value = r.i64()?;
        v.set_int(name, value);
    }
    for _ in 0..r.seq()? {
        let name = r.str()?;
        let value = r.bool()?;
        v.set_bool(name, value);
    }
    for _ in 0..r.seq()? {
        let name = r.str()?;
        let n = r.seq()?;
        let values = (0..n).map(|_| r.i64()).collect::<Result<_, _>>()?;
        v.set_array(name, values);
    }
    Ok(v)
}

pub fn write_sat_result(w: &mut Writer, result: &SatResult) {
    match result {
        SatResult::Sat(model) => {
            w.u8(0);
            match model {
                None => w.u8(0),
                Some(v) => {
                    w.u8(1);
                    write_valuation(w, v);
                }
            }
        }
        SatResult::Unsat => w.u8(1),
        SatResult::Unknown(e) => {
            w.u8(2);
            write_solver_error(w, e);
        }
    }
}

pub fn read_sat_result(r: &mut Reader) -> Result<SatResult, DecodeError> {
    Ok(match r.u8()? {
        0 => SatResult::Sat(match r.u8()? {
            0 => None,
            1 => Some(read_valuation(r)?),
            other => return err(format!("invalid option tag {other}")),
        }),
        1 => SatResult::Unsat,
        2 => SatResult::Unknown(read_solver_error(r)?),
        other => return err(format!("invalid sat-result tag {other}")),
    })
}

fn write_solver_error(w: &mut Writer, e: &SolverError) {
    match e {
        SolverError::OutsideFragment(m) => {
            w.u8(0);
            w.str(m);
        }
        SolverError::ResourceLimit(m) => {
            w.u8(1);
            w.str(m);
        }
    }
}

fn read_solver_error(r: &mut Reader) -> Result<SolverError, DecodeError> {
    Ok(match r.u8()? {
        0 => SolverError::OutsideFragment(r.str()?),
        1 => SolverError::ResourceLimit(r.str()?),
        other => return err(format!("invalid solver-error tag {other}")),
    })
}

pub fn write_translate_error(w: &mut Writer, e: &TranslateError) {
    match e {
        TranslateError::NonLinear(m) => {
            w.u8(0);
            w.str(m);
        }
        TranslateError::ArrayRead(name) => {
            w.u8(1);
            w.str(name);
        }
    }
}

pub fn read_translate_error(r: &mut Reader) -> Result<TranslateError, DecodeError> {
    Ok(match r.u8()? {
        0 => TranslateError::NonLinear(r.str()?),
        1 => TranslateError::ArrayRead(r.str()?),
        other => return err(format!("invalid translate-error tag {other}")),
    })
}

pub fn write_wp_error(w: &mut Writer, e: &WpError) {
    match e {
        WpError::ArrayWrite(name) => {
            w.u8(0);
            w.str(name);
        }
        WpError::Lower(inner) => {
            w.u8(1);
            match inner {
                LowerError::SortMismatch(m) => {
                    w.u8(0);
                    w.str(m);
                }
                LowerError::Unsupported(m) => {
                    w.u8(1);
                    w.str(m);
                }
                LowerError::Undeclared(m) => {
                    w.u8(2);
                    w.str(m);
                }
            }
        }
    }
}

pub fn read_wp_error(r: &mut Reader) -> Result<WpError, DecodeError> {
    Ok(match r.u8()? {
        0 => WpError::ArrayWrite(r.str()?),
        1 => WpError::Lower(match r.u8()? {
            0 => LowerError::SortMismatch(r.str()?),
            1 => LowerError::Unsupported(r.str()?),
            2 => LowerError::Undeclared(r.str()?),
            other => return err(format!("invalid lower-error tag {other}")),
        }),
        other => return err(format!("invalid wp-error tag {other}")),
    })
}

//! The executor abstraction the analysis stack fans work out on.
//!
//! The workspace has exactly one thread pool — `expresso_core::Scheduler`,
//! the work-stealing pool behind suite-, pair- and VC-level analysis tasks —
//! but the crates *below* `core` (notably `expresso_abduction`, whose
//! candidate-subset evaluations dominate analysis wall clock) cannot depend
//! on it without inverting the dependency arrow. This crate breaks the cycle:
//! it defines the minimal [`Executor`] trait those lower crates program
//! against, plus the zero-dependency sequential [`Inline`] implementation.
//! `expresso_core` implements `Executor` for its `Scheduler`, so the pipeline
//! hands the *same* pool that runs monitor and placement tasks down to
//! abduction — one executor everywhere, no ad-hoc `std::thread` spawns and no
//! oversubscription when every layer fans out at once.
//!
//! The contract is deliberately batch-shaped rather than spawn-shaped: a
//! caller that wants budget-aware speculation (dispatch a wave, harvest it,
//! decide whether the next wave is still worth paying for) submits one
//! bounded batch at a time and [`Executor::run_batch`] blocks until the whole
//! batch has completed. Tasks within a batch may run concurrently and in any
//! order; the caller owns result ordering (e.g. by giving each task a
//! dedicated output slot).

use std::fmt;

/// One unit of work in a batch. Tasks may borrow from the caller's frame —
/// [`Executor::run_batch`] joins the whole batch before returning, which is
/// what makes the borrow sound (the same structure as `std::thread::scope`).
pub type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

/// A strategy for running batches of independent tasks.
///
/// Implementations must run every task of the batch to completion before
/// returning and must contain nothing that observably depends on execution
/// order: callers are entitled to bit-identical results across every
/// implementation (the equivalence suite pins exactly that across the
/// inline and pool executors).
pub trait Executor: fmt::Debug + Send + Sync {
    /// Executes every task in `tasks`, returning once all have completed.
    /// Tasks may run concurrently and in any order.
    fn run_batch(&self, tasks: Vec<Task<'_>>);

    /// A short human-readable label for reports and test diagnostics.
    fn name(&self) -> &'static str {
        "executor"
    }
}

/// The sequential executor: runs each task on the calling thread, in
/// submission order. Zero dependencies, zero threads — the baseline every
/// parallel executor must be bit-identical to, and the right choice on
/// machines (or configurations) where fanning out buys nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Inline;

impl Executor for Inline {
    fn run_batch(&self, tasks: Vec<Task<'_>>) {
        for task in tasks {
            task();
        }
    }

    fn name(&self) -> &'static str {
        "inline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn inline_runs_every_task_in_submission_order() {
        let order = Mutex::new(Vec::new());
        let tasks: Vec<Task<'_>> = (0..8)
            .map(|i| {
                let order = &order;
                Box::new(move || order.lock().unwrap().push(i)) as Task<'_>
            })
            .collect();
        Inline.run_batch(tasks);
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn inline_is_usable_as_a_trait_object() {
        let executor: &dyn Executor = &Inline;
        let count = AtomicUsize::new(0);
        executor.run_batch(
            (0..4)
                .map(|_| {
                    let count = &count;
                    Box::new(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                    }) as Task<'_>
                })
                .collect(),
        );
        assert_eq!(count.load(Ordering::Relaxed), 4);
        assert_eq!(executor.name(), "inline");
    }

    #[test]
    fn empty_batches_are_fine() {
        Inline.run_batch(Vec::new());
    }
}

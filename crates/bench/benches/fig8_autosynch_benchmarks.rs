//! Criterion benchmark regenerating Figure 8: time per monitor operation for
//! the AutoSynch benchmarks + readers-writers, for the three series
//! (Expresso, AutoSynch, hand-written explicit).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expresso_bench::{analyze, measure_benchmark, Series};
use expresso_suite::autosynch_benchmarks;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let ops = 64;
    for benchmark in autosynch_benchmarks() {
        let outcome = analyze(&benchmark);
        for threads in [2usize, 4, 8] {
            for series in Series::all() {
                let id = BenchmarkId::new(
                    format!("{}/{}", benchmark.name, series.label()),
                    threads,
                );
                group.bench_with_input(id, &threads, |b, &threads| {
                    b.iter(|| {
                        measure_benchmark(&benchmark, &outcome.explicit, series, threads, ops)
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);

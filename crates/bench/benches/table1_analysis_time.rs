//! Bench target regenerating Table 1: the wall-clock time Expresso needs to
//! synthesize the explicit-signal monitor for every benchmark.
//!
//! Dependency-free harness (`harness = false`): each benchmark is analysed a
//! few times and the minimum wall-clock time is reported, which is the most
//! stable point estimate for short deterministic workloads.

use expresso_core::Expresso;
use expresso_suite::all;
use std::time::{Duration, Instant};

fn min_time(mut run: impl FnMut(), samples: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    println!("table1_analysis_time (min of 3 runs)");
    println!("{:<28} {:>12}", "benchmark", "time (ms)");
    for benchmark in all() {
        let monitor = benchmark.monitor();
        let best = min_time(
            || {
                Expresso::new()
                    .analyze(&monitor)
                    .expect("analysis succeeds");
            },
            3,
        );
        println!("{:<28} {:>12.2}", benchmark.name, best.as_secs_f64() * 1e3);
    }
}

//! Criterion benchmark regenerating Table 1: the wall-clock time Expresso
//! needs to synthesize the explicit-signal monitor for every benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use expresso_core::Expresso;
use expresso_suite::all;

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_analysis_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for benchmark in all() {
        let monitor = benchmark.monitor();
        group.bench_function(benchmark.name, |b| {
            b.iter(|| Expresso::new().analyze(&monitor).expect("analysis succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);

//! Criterion benchmark regenerating Figure 9: time per monitor operation for
//! the GitHub-mined monitors, for the three series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expresso_bench::{analyze, measure_benchmark, Series};
use expresso_suite::github_benchmarks;

fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let ops = 64;
    for benchmark in github_benchmarks() {
        let outcome = analyze(&benchmark);
        for threads in [2usize, 4, 8] {
            for series in Series::all() {
                let id = BenchmarkId::new(
                    format!("{}/{}", benchmark.name, series.label()),
                    threads,
                );
                group.bench_with_input(id, &threads, |b, &threads| {
                    b.iter(|| {
                        measure_benchmark(&benchmark, &outcome.explicit, series, threads, ops)
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);

//! Bench target regenerating Figure 9: time per monitor operation for the
//! GitHub-mined monitors, for the three series.
//!
//! Dependency-free harness (`harness = false`): each (benchmark, series,
//! threads) cell reports the fastest of three saturation measurements
//! in us/op.

use expresso_bench::{analyze, measure_benchmark_best, Series};
use expresso_suite::github_benchmarks;

fn main() {
    let ops = 64;
    println!("fig9 (us/op, {ops} ops/thread)");
    for benchmark in github_benchmarks() {
        let outcome = analyze(&benchmark);
        for threads in [2usize, 4, 8] {
            for series in Series::all() {
                let m =
                    measure_benchmark_best(&benchmark, &outcome.explicit, series, threads, ops, 3);
                println!(
                    "{}/{}/{threads}: {:.2}",
                    benchmark.name,
                    series.label(),
                    m.micros_per_op
                );
            }
        }
    }
}

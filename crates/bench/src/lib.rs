//! Shared measurement helpers for the benchmark harness and the `reproduce`
//! binary.
//!
//! The three evaluation artefacts of the paper are regenerated as follows:
//!
//! * **Figure 8 / Figure 9** — [`measure_benchmark`] runs one saturation test
//!   per (benchmark, thread-count, engine) triple and reports microseconds per
//!   monitor operation for the three series: Expresso-generated signalling,
//!   the AutoSynch-style run-time engine, and the hand-written explicit
//!   placement (represented by the same statically-decided notification table,
//!   which for these monitors coincides with the hand-written code — see
//!   EXPERIMENTS.md).
//! * **Table 1** — [`analysis_time`] measures the wall-clock time of the full
//!   Expresso pipeline per benchmark.

use expresso_core::{AnalysisOutcome, Expresso};
use expresso_logic::Valuation;
use expresso_monitor_lang::ExplicitMonitor;
use expresso_runtime::{run_saturation, AutoSynchRuntime, ExplicitRuntime, MonitorRuntime};
use expresso_suite::Benchmark;
use std::time::Duration;

/// The three series plotted in every figure of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// Expresso-generated explicit-signal code.
    Expresso,
    /// The AutoSynch-style run-time system (per-waiter predicate evaluation).
    AutoSynch,
    /// Hand-written explicit-signal code.
    Explicit,
}

impl Series {
    /// All series in plot order.
    pub fn all() -> [Series; 3] {
        [Series::Expresso, Series::AutoSynch, Series::Explicit]
    }

    /// Label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Series::Expresso => "Expresso",
            Series::AutoSynch => "AutoSynch",
            Series::Explicit => "Explicit",
        }
    }
}

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Series the point belongs to.
    pub series: Series,
    /// Number of worker threads.
    pub threads: usize,
    /// Microseconds per monitor operation.
    pub micros_per_op: f64,
    /// Wake-ups observed (context-switch proxy).
    pub wakeups: usize,
    /// Run-time predicate evaluations performed by the engine.
    pub predicate_evaluations: usize,
}

/// Analyses a benchmark once (used by Table 1 and to build the Expresso series).
pub fn analyze(benchmark: &Benchmark) -> AnalysisOutcome {
    Expresso::new()
        .analyze(&benchmark.monitor())
        .unwrap_or_else(|e| panic!("{} failed analysis: {e}", benchmark.name))
}

/// Measures the wall-clock analysis time of a benchmark (Table 1).
pub fn analysis_time(benchmark: &Benchmark) -> (Duration, AnalysisOutcome) {
    let outcome = analyze(benchmark);
    (outcome.stats.total_time, outcome)
}

fn build_runtime(
    series: Series,
    benchmark: &Benchmark,
    expresso_monitor: &ExplicitMonitor,
    ctor: &Valuation,
) -> Box<dyn MonitorRuntime> {
    match series {
        Series::Expresso | Series::Explicit => Box::new(
            ExplicitRuntime::new(expresso_monitor.clone(), ctor)
                .unwrap_or_else(|e| panic!("{}: {e}", benchmark.name)),
        ),
        Series::AutoSynch => Box::new(
            AutoSynchRuntime::new(benchmark.monitor(), ctor)
                .unwrap_or_else(|e| panic!("{}: {e}", benchmark.name)),
        ),
    }
}

/// Runs one saturation measurement for a benchmark with `threads` workers.
pub fn measure_benchmark(
    benchmark: &Benchmark,
    expresso_monitor: &ExplicitMonitor,
    series: Series,
    threads: usize,
    ops_per_thread: usize,
) -> Measurement {
    let ctor = (benchmark.ctor_args)(threads);
    let runtime = build_runtime(series, benchmark, expresso_monitor, &ctor);
    let plans = (benchmark.plans)(threads, ops_per_thread);
    let result = run_saturation(runtime.as_ref(), &plans);
    Measurement {
        benchmark: benchmark.name.to_string(),
        series,
        threads,
        micros_per_op: result.micros_per_op(),
        wakeups: result.wakeups,
        predicate_evaluations: result.predicate_evaluations,
    }
}

/// Runs [`measure_benchmark`] `samples` times and keeps the fastest run —
/// the stable point estimate for short, noisy saturation tests (thread
/// spawn and scheduler warm-up dominate single runs).
pub fn measure_benchmark_best(
    benchmark: &Benchmark,
    expresso_monitor: &ExplicitMonitor,
    series: Series,
    threads: usize,
    ops_per_thread: usize,
    samples: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..samples.max(1) {
        let m = measure_benchmark(benchmark, expresso_monitor, series, threads, ops_per_thread);
        let better = best
            .as_ref()
            .map(|b| m.micros_per_op < b.micros_per_op)
            .unwrap_or(true);
        if better {
            best = Some(m);
        }
    }
    best.expect("at least one sample")
}

/// Formats a set of measurements for one benchmark as a plot-like text table
/// (threads on the rows, one column per series), mirroring the figures.
pub fn format_figure(benchmark: &str, measurements: &[Measurement]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{benchmark} (us/op)");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "threads", "Expresso", "AutoSynch", "Explicit"
    );
    let mut threads: Vec<usize> = measurements.iter().map(|m| m.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let cell = |series: Series| {
            measurements
                .iter()
                .find(|m| m.threads == t && m.series == series)
                .map(|m| format!("{:.2}", m.micros_per_op))
                .unwrap_or_else(|| "-".to_string())
        };
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>12}",
            t,
            cell(Series::Expresso),
            cell(Series::AutoSynch),
            cell(Series::Explicit)
        );
    }
    out
}

/// Computes the geometric-mean speed-up of `numerator` over `denominator`
/// across matching (benchmark, threads) points — the paper's headline "1.56×
/// faster than AutoSynch on average" aggregate.
pub fn geometric_speedup(
    measurements: &[Measurement],
    numerator: Series,
    denominator: Series,
) -> f64 {
    let mut ratios = Vec::new();
    for m in measurements.iter().filter(|m| m.series == denominator) {
        if let Some(base) = measurements
            .iter()
            .find(|b| b.series == numerator && b.benchmark == m.benchmark && b.threads == m.threads)
        {
            if base.micros_per_op > 0.0 && m.micros_per_op > 0.0 {
                ratios.push(m.micros_per_op / base.micros_per_op);
            }
        }
    }
    if ratios.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_speedup_of_identical_series_is_one() {
        let ms = vec![
            Measurement {
                benchmark: "X".into(),
                series: Series::Expresso,
                threads: 2,
                micros_per_op: 5.0,
                wakeups: 0,
                predicate_evaluations: 0,
            },
            Measurement {
                benchmark: "X".into(),
                series: Series::AutoSynch,
                threads: 2,
                micros_per_op: 10.0,
                wakeups: 0,
                predicate_evaluations: 0,
            },
        ];
        let speedup = geometric_speedup(&ms, Series::Expresso, Series::AutoSynch);
        assert!((speedup - 2.0).abs() < 1e-9);
        assert!((geometric_speedup(&ms, Series::Expresso, Series::Expresso) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure_formatting_lists_thread_counts() {
        let ms = vec![Measurement {
            benchmark: "X".into(),
            series: Series::Expresso,
            threads: 4,
            micros_per_op: 1.25,
            wakeups: 3,
            predicate_evaluations: 0,
        }];
        let text = format_figure("X", &ms);
        assert!(text.contains("threads"));
        assert!(text.contains("1.25"));
    }
}

//! Regenerates the paper's evaluation artefacts as text tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p expresso-bench --bin reproduce -- fig8
//! cargo run --release -p expresso-bench --bin reproduce -- fig9
//! cargo run --release -p expresso-bench --bin reproduce -- table1
//! cargo run --release -p expresso-bench --bin reproduce -- json
//! cargo run --release -p expresso-bench --bin reproduce -- suite
//! cargo run --release -p expresso-bench --bin reproduce -- explore
//! cargo run --release -p expresso-bench --bin reproduce -- load
//! cargo run --release -p expresso-bench --bin reproduce -- persist
//! cargo run --release -p expresso-bench --bin reproduce -- trace
//! cargo run --release -p expresso-bench --bin reproduce -- summary
//! cargo run --release -p expresso-bench --bin reproduce -- all
//! ```
//!
//! `json` (also run by `all`) writes `BENCH_results.json`: per-benchmark
//! analysis time for the cached/parallel pipeline and for a cache-disabled
//! sequential run of the same binary, triples checked, the solver cache
//! hit rate, the `scheduler_suite` section comparing the whole suite
//! analyzed concurrently on the work-stealing pool against the sequential
//! (`analysis_threads = 1`) configuration, the `runtime_load` section
//! (every suite monitor hammered by the session load generator under the
//! implicit, explicit-static and explicit-targeted engines: throughput,
//! p50/p99/p999 latency, wakeups, avoided wakeups), and the `explore`
//! section (bounded DPOR exploration of every suite monitor: executions
//! checked, reduction factor vs. naive enumeration, divergences) — the
//! machine-readable perf trajectory tracked across PRs. `suite` runs only
//! the scheduler comparison.
//!
//! `explore` runs a deeper bounded exploration of a representative
//! 6-benchmark subset under a preemption bound (sized for CI's budget) and
//! exits nonzero on any implicit/explicit divergence.
//!
//! `load` is the fast CI gate for the runtime: the representative subset
//! under the load generator, tripwiring on any failed monitor call, on
//! targeted-mode wakeups exceeding the implicit engine's, and on the fast
//! path never avoiding a wakeup. `json` additionally tripwires when suite
//! analysis dispatches zero abduction tasks onto the shared scheduler.
//!
//! `persist` (also folded into `json` as the `persistence` section) is the
//! warm-start gate: a seeded generated corpus (`REPRO_CORPUS_SIZE` monitors,
//! default 500) analysed cold into an empty cache directory, then warm from
//! the saved artifact, then once more with exactly one monitor mutated. It
//! tripwires unless the warm run is faster (≥2x at 64+ monitors), served
//! from disk, bit-identical to the cold run, and the mutation re-analyses
//! exactly one monitor.
//!
//! `trace` is the observability gate: the representative subset run end to
//! end with span recording on, the Chrome trace written to `EXPRESSO_TRACE`
//! (default `expresso-trace.json`) and validated from disk — well-formed
//! JSON, balanced nesting, spans from every instrumented subsystem, ≥80%
//! wall-time coverage. `json` additionally writes an `observability`
//! section (per-phase attribution, span coverage, unified metrics snapshot)
//! and tripwires on coverage below 80%.
//!
//! Environment variables `REPRO_MAX_THREADS` (default 16) and `REPRO_OPS`
//! (default 200) scale the saturation sweep; `REPRO_EXPLORE_THREADS` /
//! `REPRO_EXPLORE_OPS` (defaults 3 / 2) bound the exploration workloads and
//! `REPRO_EXPLORE_PREEMPTIONS` (default 5) bounds the `explore` CI gate;
//! `REPRO_LOAD_WORKERS` / `REPRO_LOAD_SESSIONS` / `REPRO_LOAD_ROUNDS`
//! (defaults 4 / 256 / 2) shape the load runs; `REPRO_CORPUS_SIZE` sizes
//! the persistence corpus and `EXPRESSO_CACHE_DIR` overrides its cache
//! directory.

use expresso_bench::{
    analysis_time, analyze, format_figure, geometric_speedup, measure_benchmark, Measurement,
    Series,
};
use expresso_core::{
    to_java, Expresso, ExpressoConfig, Scheduler, SchedulerStats, SharedAnalysisContext, TRACE_ENV,
};
use expresso_explore::{
    benchmark_workload, explore, render_trace, ExploreConfig, RefinedIndependence, Strategy,
};
use expresso_loadgen::{measure as measure_load, EngineKind, LoadConfig, LoadReport};
use expresso_monitor_lang::check_monitor;
use expresso_suite::{
    all, autosynch_benchmarks, github_benchmarks, scaled_thread_counts, Benchmark,
};
use expresso_vcgen::{refine_independence, WpCacheStats};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_figure(benchmarks: &[Benchmark], title: &str) -> Vec<Measurement> {
    let max_threads = env_usize("REPRO_MAX_THREADS", 16);
    let ops = env_usize("REPRO_OPS", 200);
    println!("=== {title} (saturation tests, {ops} ops/thread) ===\n");
    let mut all = Vec::new();
    for benchmark in benchmarks {
        let outcome = analyze(benchmark);
        let mut measurements = Vec::new();
        for threads in scaled_thread_counts(max_threads) {
            for series in Series::all() {
                measurements.push(measure_benchmark(
                    benchmark,
                    &outcome.explicit,
                    series,
                    threads,
                    ops,
                ));
            }
        }
        println!("{}", format_figure(benchmark.name, &measurements));
        all.extend(measurements);
    }
    all
}

fn run_table1() {
    println!("=== Table 1: analysis time per benchmark ===\n");
    println!(
        "{:<28} {:>12} {:>10} {:>12}",
        "Benchmark", "time (s)", "triples", "invariant"
    );
    let mut benchmarks = autosynch_benchmarks();
    benchmarks.extend(github_benchmarks());
    for benchmark in &benchmarks {
        let (duration, outcome) = analysis_time(benchmark);
        println!(
            "{:<28} {:>12.2} {:>10} {:>12}",
            benchmark.name,
            duration.as_secs_f64(),
            outcome.stats.triples_checked,
            outcome.stats.invariant_conjuncts,
        );
    }
}

/// One benchmark's analysis profile for `BENCH_results.json`.
struct AnalysisProfile {
    name: &'static str,
    group: &'static str,
    cached_ms: f64,
    uncached_ms: f64,
    invariant_ms: f64,
    placement_ms: f64,
    quantifier_eliminations: usize,
    qe_cache_hits: usize,
    triples_checked: usize,
    pairs_considered: usize,
    cache_hits: usize,
    cache_misses: usize,
    cache_hit_rate: f64,
    wp_cache_hits: usize,
    wp_cache_misses: usize,
    notifications: usize,
    broadcasts: usize,
}

/// Analyses `monitor` `samples` times with `config`, returning the run with
/// the minimum total time (the stable point estimate for short deterministic
/// workloads).
fn best_of(
    benchmark: &Benchmark,
    monitor: &expresso_monitor_lang::Monitor,
    config: ExpressoConfig,
    samples: usize,
) -> expresso_core::AnalysisOutcome {
    let pipeline = Expresso::with_config(config);
    let mut best: Option<expresso_core::AnalysisOutcome> = None;
    for _ in 0..samples {
        let outcome = pipeline
            .analyze(monitor)
            .unwrap_or_else(|e| panic!("{} failed analysis: {e}", benchmark.name));
        let better = best
            .as_ref()
            .map(|b| outcome.stats.total_time < b.stats.total_time)
            .unwrap_or(true);
        if better {
            best = Some(outcome);
        }
    }
    best.expect("at least one sample")
}

fn profile_benchmark(benchmark: &Benchmark) -> AnalysisProfile {
    let monitor = benchmark.monitor();
    // 5 samples per configuration: the minimum of a deterministic workload
    // converges quickly, and the extra samples keep scheduler noise out of
    // the tracked trajectory (the perf tripwire compares absolute totals).
    let cached = best_of(benchmark, &monitor, ExpressoConfig::default(), 5);
    let uncached = best_of(
        benchmark,
        &monitor,
        ExpressoConfig {
            enable_solver_cache: false,
            parallel_analysis: false,
            ..ExpressoConfig::default()
        },
        5,
    );
    assert_eq!(
        cached.explicit, uncached.explicit,
        "{}: cached and uncached pipelines disagree",
        benchmark.name
    );
    AnalysisProfile {
        name: benchmark.name,
        group: match benchmark.group {
            expresso_suite::BenchmarkGroup::AutoSynch => "AutoSynch",
            expresso_suite::BenchmarkGroup::GitHub => "GitHub",
            expresso_suite::BenchmarkGroup::Extended => "Extended",
        },
        cached_ms: cached.stats.total_time.as_secs_f64() * 1e3,
        uncached_ms: uncached.stats.total_time.as_secs_f64() * 1e3,
        invariant_ms: cached.stats.invariant_time.as_secs_f64() * 1e3,
        placement_ms: cached.stats.placement_time.as_secs_f64() * 1e3,
        quantifier_eliminations: cached.stats.solver.quantifier_eliminations,
        qe_cache_hits: cached.stats.solver.qe_cache_hits,
        triples_checked: cached.report.triples_checked,
        pairs_considered: cached.report.pairs_considered,
        cache_hits: cached.stats.solver.cache_hits,
        cache_misses: cached.stats.solver.cache_misses,
        cache_hit_rate: cached.stats.solver.cache_hit_rate(),
        wp_cache_hits: cached.stats.wp_cache.hits,
        wp_cache_misses: cached.stats.wp_cache.misses,
        notifications: cached.explicit.notification_count(),
        broadcasts: cached.explicit.broadcast_count(),
    }
}

/// One benchmark's slice of the shared-arena suite run.
struct SharedMonitorProfile {
    name: &'static str,
    analysis_ms: f64,
    cache_hits: usize,
    cross_analysis_hits: usize,
}

/// The suite analysed against one [`SharedAnalysisContext`]: per-monitor
/// deltas plus the cross-monitor reuse the shared arena buys.
struct SharedArenaProfile {
    per_monitor: Vec<SharedMonitorProfile>,
    total_ms: f64,
    total_hits: usize,
    cross_analysis_hits: usize,
    cross_analysis_hit_rate: f64,
    formula_nodes: usize,
    interner_shards: usize,
    arena_lock_contentions: usize,
    wp_cache_hits: usize,
    wp_cache_misses: usize,
}

/// Runs every suite benchmark through a single shared arena + solver, verifying
/// the results agree with the per-monitor (private-context) pipeline.
fn profile_shared_arena() -> SharedArenaProfile {
    let pipeline = Expresso::new();
    let context = SharedAnalysisContext::new(pipeline.config());
    let mut per_monitor = Vec::new();
    let mut wp_cache_hits = 0usize;
    let mut wp_cache_misses = 0usize;
    for benchmark in all() {
        let monitor = benchmark.monitor();
        let shared = pipeline
            .analyze_with_context(&context, &monitor)
            .unwrap_or_else(|e| panic!("{} failed shared-arena analysis: {e}", benchmark.name));
        let private = pipeline
            .analyze(&monitor)
            .unwrap_or_else(|e| panic!("{} failed private analysis: {e}", benchmark.name));
        assert_eq!(
            shared.explicit, private.explicit,
            "{}: shared-arena and private-context pipelines disagree",
            benchmark.name
        );
        let solver = &shared.stats.solver;
        wp_cache_hits += shared.stats.wp_cache.hits;
        wp_cache_misses += shared.stats.wp_cache.misses;
        per_monitor.push(SharedMonitorProfile {
            name: benchmark.name,
            analysis_ms: shared.stats.total_time.as_secs_f64() * 1e3,
            cache_hits: solver.cache_hits + solver.qe_cache_hits + solver.theory_cache_hits,
            cross_analysis_hits: solver.cross_analysis_hits,
        });
    }
    let totals = context.stats();
    let arena = context.interner_stats();
    SharedArenaProfile {
        total_ms: per_monitor.iter().map(|p| p.analysis_ms).sum(),
        per_monitor,
        total_hits: totals.cache_hits + totals.qe_cache_hits + totals.theory_cache_hits,
        cross_analysis_hits: totals.cross_analysis_hits,
        cross_analysis_hit_rate: totals.cross_analysis_hit_rate(),
        formula_nodes: arena.formula_nodes,
        interner_shards: arena.shard_count,
        arena_lock_contentions: arena.lock_contentions,
        wp_cache_hits,
        wp_cache_misses,
    }
}

/// The whole suite analysed concurrently on the work-stealing pool vs. the
/// fully sequential (`analysis_threads = 1`) configuration of the same
/// binary, plus the scheduler and suite-wide WP-store counters of the pool
/// run.
struct SchedulerSuiteProfile {
    suite_size: usize,
    pool_wall_ms: f64,
    sequential_wall_ms: f64,
    scheduler: SchedulerStats,
    wp: WpCacheStats,
    outputs_identical: bool,
}

/// Wall-clock samples per scheduler mode; the minimum is reported (the
/// stable point estimate for short deterministic workloads).
const SCHEDULER_SUITE_SAMPLES: usize = 5;

/// Runs the suite through [`Expresso::analyze_suite`] twice — once on the
/// default work-stealing pool, once with `analysis_threads = 1` — verifying
/// the outcomes are bit-identical and recording the pool counters.
fn profile_scheduler_suite() -> SchedulerSuiteProfile {
    let monitors: Vec<expresso_monitor_lang::Monitor> = all().iter().map(|b| b.monitor()).collect();
    let names: Vec<&'static str> = all().iter().map(|b| b.name).collect();

    let run_once = |threads: usize| {
        let pipeline = Expresso::with_config(ExpressoConfig {
            analysis_threads: threads,
            ..ExpressoConfig::default()
        });
        let context = SharedAnalysisContext::new(pipeline.config());
        // The default configuration shares the process-wide pool, whose
        // counters accumulate across everything this binary has run; the
        // before/after delta attributes exactly this suite pass.
        let scheduler_before = context.scheduler_stats();
        let start = Instant::now();
        let outcomes = pipeline.analyze_suite(&context, &monitors);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let outcomes: Vec<expresso_core::AnalysisOutcome> = outcomes
            .into_iter()
            .zip(&names)
            .map(|(o, name)| o.unwrap_or_else(|e| panic!("{name} failed suite analysis: {e}")))
            .collect();
        (
            wall_ms,
            outcomes,
            context.wp_stats(),
            context.scheduler_stats().delta_since(&scheduler_before),
        )
    };

    // Interleave the two modes so process-level warm-up (allocator growth,
    // page faults, lazy statics) does not bias either side; report the
    // minimum wall time per mode. The scheduler counters are the summed
    // per-pass deltas of every pool sample (each sample is one clean suite
    // pass; which pass steals how much is scheduling-dependent, so the sum
    // is the stable observable).
    let mut pool_wall_ms = f64::INFINITY;
    let mut sequential_wall_ms = f64::INFINITY;
    let mut pool_kept = None;
    let mut scheduler_total = SchedulerStats::default();
    let mut sequential_outcomes = None;
    for _ in 0..SCHEDULER_SUITE_SAMPLES {
        let (seq_ms, seq_out, _, _) = run_once(1);
        sequential_wall_ms = sequential_wall_ms.min(seq_ms);
        sequential_outcomes = Some(seq_out);
        let (pool_ms, pool_out, wp, scheduler) = run_once(0);
        pool_wall_ms = pool_wall_ms.min(pool_ms);
        scheduler_total.merge(&scheduler);
        pool_kept = Some((pool_out, wp));
    }
    let (pool_outcomes, wp) = pool_kept.expect("at least one sample");
    let scheduler = scheduler_total;
    let sequential_outcomes = sequential_outcomes.expect("at least one sample");

    let outputs_identical = pool_outcomes
        .iter()
        .zip(&sequential_outcomes)
        .all(|(pool, seq)| {
            pool.explicit == seq.explicit
                && pool.invariant == seq.invariant
                && pool.report.decisions == seq.report.decisions
                && pool.report.triples_checked == seq.report.triples_checked
                && pool.report.pairs_considered == seq.report.pairs_considered
                && pool.report.skipped == seq.report.skipped
        });
    SchedulerSuiteProfile {
        suite_size: monitors.len(),
        pool_wall_ms,
        sequential_wall_ms,
        scheduler,
        wp,
        outputs_identical,
    }
}

/// The persistent warm-start cache proven at service scale: a seeded
/// generated corpus analysed cold (empty cache directory), then warm (fresh
/// process-equivalent context seeded from the artifact the cold run saved),
/// then with exactly one monitor mutated (the incremental-invalidation
/// probe).
struct PersistenceProfile {
    corpus_monitors: usize,
    corpus_seed: u64,
    cache_dir: String,
    /// Where the cache directory came from: the `EXPRESSO_CACHE_DIR`
    /// environment variable or the built-in default.
    cache_dir_source: &'static str,
    cold_ms: f64,
    warm_ms: f64,
    warm_speedup: f64,
    dirty_ms: f64,
    artifact_bytes: u64,
    saved_sat: usize,
    saved_qe: usize,
    saved_theory: usize,
    saved_wp: usize,
    seeded_entries: usize,
    solver_disk_hits: usize,
    wp_disk_hits: usize,
    outcomes_identical: bool,
    /// Monitors whose warm-start analysis recomputed at least one weakest
    /// precondition after the one-monitor mutation. The invalidation-
    /// precision pin: must be exactly 1.
    dirty_reanalyzed: usize,
    /// WP misses summed over the *unmutated* monitors of the dirty run.
    /// Must be 0 — content-addressing may not spill invalidation across
    /// monitor boundaries.
    dirty_clean_misses: usize,
}

/// Outcome fields the cold/warm equivalence check compares; everything the
/// analysis decides, none of what it merely times.
fn outcomes_equal(
    a: &[expresso_core::AnalysisOutcome],
    b: &[expresso_core::AnalysisOutcome],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.explicit == y.explicit
                && x.invariant == y.invariant
                && x.report.decisions == y.report.decisions
                && x.report.triples_checked == y.report.triples_checked
                && x.report.pairs_considered == y.report.pairs_considered
                && x.report.skipped == y.report.skipped
        })
}

/// Generates the corpus, runs cold → save → warm → dirty, and collects the
/// timing, disk-hit and invalidation-precision counters.
///
/// The cache directory is `EXPRESSO_CACHE_DIR` when set, else
/// `./.expresso-cache`; any artifact already there is removed first so the
/// cold phase is genuinely cold.
fn profile_persistence() -> PersistenceProfile {
    let spec = expresso_suite::CorpusSpec {
        size: env_usize("REPRO_CORPUS_SIZE", 500),
        ..expresso_suite::CorpusSpec::default()
    };
    let (cache_dir, cache_dir_source) = match std::env::var_os(expresso_core::CACHE_DIR_ENV) {
        Some(dir) => (std::path::PathBuf::from(dir), "env"),
        None => (
            std::path::PathBuf::from(expresso_persist::DEFAULT_CACHE_DIR),
            "default",
        ),
    };
    match std::fs::remove_file(expresso_persist::artifact_path(&cache_dir)) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => panic!(
            "cannot clear stale artifact in {}: {e}",
            cache_dir.display()
        ),
    }

    let corpus = expresso_suite::corpusgen::generate(&spec);
    let monitors: Vec<expresso_monitor_lang::Monitor> =
        corpus.iter().map(|v| v.monitor()).collect();
    let config = ExpressoConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ExpressoConfig::default()
    };
    let pipeline = Expresso::with_config(config.clone());

    let run_suite = |monitors: &[expresso_monitor_lang::Monitor]| {
        let context = SharedAnalysisContext::new(&config);
        let start = Instant::now();
        let outcomes: Vec<expresso_core::AnalysisOutcome> = pipeline
            .analyze_suite(&context, monitors)
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|e| panic!("corpus monitor {i} failed analysis: {e}")))
            .collect();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        (context, outcomes, wall_ms)
    };

    // Cold: empty cache directory, so the context starts with empty tables.
    let (cold_context, cold_outcomes, cold_ms) = run_suite(&monitors);
    assert!(
        cold_context.warm_start().is_none(),
        "cold phase unexpectedly found an artifact"
    );
    let saved = cold_context
        .persist()
        .expect("persisting the cold run's caches")
        .expect("a cache directory is configured");

    // Warm: a fresh context (fresh arena — ids cannot carry over) auto-loads
    // the artifact during construction, exactly as a new process would.
    let (warm_context, warm_outcomes, warm_ms) = run_suite(&monitors);
    let seeded = warm_context
        .warm_start()
        .expect("warm phase must load the artifact the cold phase saved");
    let warm_stats = warm_context.stats();
    let wp_disk_hits = warm_context.wp_stats().disk_hits;

    // Dirty: mutate exactly one monitor and warm-start again; only that
    // monitor's keys can miss.
    let mut dirty_sources: Vec<String> = corpus.iter().map(|v| v.source.clone()).collect();
    dirty_sources[0] = expresso_suite::mutate_source(&dirty_sources[0]);
    let dirty_monitors: Vec<expresso_monitor_lang::Monitor> = dirty_sources
        .iter()
        .map(|s| expresso_monitor_lang::parse_monitor(s).expect("mutated corpus source parses"))
        .collect();
    let (_dirty_context, dirty_outcomes, dirty_ms) = run_suite(&dirty_monitors);
    let dirty_reanalyzed = dirty_outcomes
        .iter()
        .filter(|o| o.stats.wp_cache.misses > 0)
        .count();
    let dirty_clean_misses: usize = dirty_outcomes
        .iter()
        .skip(1)
        .map(|o| o.stats.wp_cache.misses)
        .sum();

    PersistenceProfile {
        corpus_monitors: corpus.len(),
        corpus_seed: spec.seed,
        cache_dir: cache_dir.display().to_string(),
        cache_dir_source,
        cold_ms,
        warm_ms,
        warm_speedup: if warm_ms > 0.0 {
            cold_ms / warm_ms
        } else {
            1.0
        },
        dirty_ms,
        artifact_bytes: saved.bytes,
        saved_sat: saved.sat,
        saved_qe: saved.qe,
        saved_theory: saved.theory,
        saved_wp: saved.wp,
        seeded_entries: seeded.total(),
        solver_disk_hits: warm_stats.disk_hits,
        wp_disk_hits,
        outcomes_identical: outcomes_equal(&cold_outcomes, &warm_outcomes),
        dirty_reanalyzed,
        dirty_clean_misses,
    }
}

/// Fail-loud gates on the persistence profile: warm must actually be faster
/// (≥2x at scale), served from disk, bit-identical, and invalidation must be
/// surgical. Exits nonzero on any violation.
fn enforce_persistence_tripwires(p: &PersistenceProfile) {
    if !p.outcomes_identical {
        eprintln!(
            "error: warm-start outcomes differ from the cold run; the persisted \
             cache is not a pure optimisation"
        );
        std::process::exit(1);
    }
    if p.warm_ms >= p.cold_ms {
        eprintln!(
            "error: warm run ({:.1} ms) is no faster than the cold run ({:.1} ms); \
             the artifact is not being served",
            p.warm_ms, p.cold_ms
        );
        std::process::exit(1);
    }
    // At service scale the analysis dominates fixed per-run overhead and the
    // headline claim must hold; tiny smoke corpora only assert direction.
    if p.corpus_monitors >= 64 && p.warm_speedup < 2.0 {
        eprintln!(
            "error: warm speedup {:.2}x is below the 2x floor on a {}-monitor corpus",
            p.warm_speedup, p.corpus_monitors
        );
        std::process::exit(1);
    }
    // Every monitor asks at least one WP and one solver query; a warm run
    // below one disk hit per monitor means seeding silently went dead.
    if p.wp_disk_hits < p.corpus_monitors || p.solver_disk_hits < p.corpus_monitors {
        eprintln!(
            "error: warm run served only {} WP / {} solver hits from disk over a \
             {}-monitor corpus; the artifact is not seeding the caches",
            p.wp_disk_hits, p.solver_disk_hits, p.corpus_monitors
        );
        std::process::exit(1);
    }
    if p.dirty_reanalyzed != 1 {
        eprintln!(
            "error: mutating one monitor re-analysed {} monitors (expected exactly 1); \
             invalidation is not content-addressed",
            p.dirty_reanalyzed
        );
        std::process::exit(1);
    }
    if p.dirty_clean_misses != 0 {
        eprintln!(
            "error: unmutated monitors recomputed {} weakest preconditions after a \
             one-monitor edit; invalidation spilled across monitor boundaries",
            p.dirty_clean_misses
        );
        std::process::exit(1);
    }
}

fn print_persistence(p: &PersistenceProfile) {
    println!(
        "corpus: {} monitors (seed {:#x}), cache dir {} ({})",
        p.corpus_monitors, p.corpus_seed, p.cache_dir, p.cache_dir_source
    );
    println!(
        "cold {:.1} ms -> warm {:.1} ms ({:.2}x); dirty re-run {:.1} ms",
        p.cold_ms, p.warm_ms, p.warm_speedup, p.dirty_ms
    );
    println!(
        "artifact: {} bytes ({} sat, {} qe, {} theory, {} wp entries); {} seeded on load",
        p.artifact_bytes, p.saved_sat, p.saved_qe, p.saved_theory, p.saved_wp, p.seeded_entries
    );
    println!(
        "warm run served {} solver + {} WP hits from disk; outcomes identical: {}",
        p.solver_disk_hits, p.wp_disk_hits, p.outcomes_identical
    );
    println!(
        "one-monitor mutation re-analysed {} monitor(s); clean-monitor WP misses: {}",
        p.dirty_reanalyzed, p.dirty_clean_misses
    );
}

/// The persistence gate (`reproduce persist`): cold → warm → dirty over the
/// generated corpus, with the fail-loud tripwires. `REPRO_CORPUS_SIZE`
/// scales the corpus (CI uses a small one; the committed BENCH_results.json
/// uses the full 500).
fn run_persist() {
    println!("=== Persistent warm-start cache: cold -> warm -> dirty ===\n");
    let profile = profile_persistence();
    print_persistence(&profile);
    enforce_persistence_tripwires(&profile);
    println!("\npersistence tripwires passed");
}

/// One benchmark's slice of the bounded schedule exploration.
struct ExploreBenchmarkProfile {
    name: &'static str,
    dpor_executions: usize,
    naive_executions: usize,
    transitions: usize,
    dedup_hits: usize,
    sleep_prunes: usize,
    sleep_set_blocked: usize,
    disjointness_queries: usize,
    disjointness_cache_hits: usize,
    capped_subtrees: usize,
    divergences: usize,
    dpor_ms: f64,
    naive_ms: f64,
}

impl ExploreBenchmarkProfile {
    /// Executions naive enumeration walks per execution DPOR walks.
    fn reduction(&self) -> f64 {
        if self.dpor_executions == 0 {
            1.0
        } else {
            self.naive_executions as f64 / self.dpor_executions as f64
        }
    }
}

/// The whole suite systematically explored with small bounds: per-benchmark
/// DPOR-vs-naive execution counts plus the aggregate reduction factor.
struct ExplorationProfile {
    threads: usize,
    ops_per_thread: usize,
    per_benchmark: Vec<ExploreBenchmarkProfile>,
    total_dpor_executions: usize,
    total_naive_executions: usize,
    sleep_set_blocked: usize,
    disjointness_queries: usize,
    disjointness_cache_hits: usize,
    divergences: usize,
}

impl ExplorationProfile {
    /// Executions naive enumeration walks per execution DPOR walks.
    fn reduction_factor(&self) -> f64 {
        if self.total_dpor_executions == 0 {
            1.0
        } else {
            self.total_naive_executions as f64 / self.total_dpor_executions as f64
        }
    }

    /// Arithmetic mean of the per-benchmark reduction factors. The
    /// aggregate `reduction_factor` is dominated by whichever monitor has
    /// the largest naive schedule space; the mean weights every benchmark
    /// equally, so it is the number the explore tripwire gates on.
    fn mean_reduction(&self) -> f64 {
        if self.per_benchmark.is_empty() {
            1.0
        } else {
            self.per_benchmark
                .iter()
                .map(|p| p.reduction())
                .sum::<f64>()
                / self.per_benchmark.len() as f64
        }
    }
}

/// Runs the DPOR explorer (lockstep conformance checking on) and the naive
/// enumerator (counting only) over each benchmark's bounded workload. Any
/// divergence is printed with its minimized counterexample schedule; the
/// caller tripwires on the count.
fn profile_exploration(
    benchmarks: &[Benchmark],
    threads: usize,
    ops_per_thread: usize,
    dpor_config: &ExploreConfig,
    run_naive: bool,
) -> ExplorationProfile {
    let pipeline = Expresso::new();
    let context = SharedAnalysisContext::new(pipeline.config());
    let naive_config = ExploreConfig {
        strategy: Strategy::Naive,
        check: false,
        independence: None,
        ..dpor_config.clone()
    };
    let mut per_benchmark = Vec::new();
    for benchmark in benchmarks {
        let monitor = benchmark.monitor();
        let table = check_monitor(&monitor).expect("benchmark checks");
        let outcome = pipeline
            .analyze_with_context(&context, &monitor)
            .unwrap_or_else(|e| panic!("{} failed analysis: {e}", benchmark.name));
        let workload = benchmark_workload(benchmark, &monitor, &table, threads, ops_per_thread)
            .unwrap_or_else(|e| panic!("{} failed workload construction: {e}", benchmark.name));
        // Discharge the pairwise guard-disjointness / commutation conditions
        // through the suite-wide memoizing store: computed once per monitor,
        // served from cache (or the persisted artifact) on every later run.
        let before = context.disjointness_stats();
        let refined =
            refine_independence(&monitor, &table, context.solver(), context.disjointness());
        let after = context.disjointness_stats();
        let independence = Arc::new(RefinedIndependence {
            table: refined,
            queries: after.queries - before.queries,
            cache_hits: after.hits - before.hits,
        });
        let refined_config = ExploreConfig {
            independence: Some(independence),
            ..dpor_config.clone()
        };
        let start = Instant::now();
        let dpor = explore(
            &monitor,
            &table,
            &outcome.explicit,
            &workload,
            &refined_config,
        )
        .unwrap_or_else(|e| panic!("{} failed exploration: {e}", benchmark.name));
        let dpor_ms = start.elapsed().as_secs_f64() * 1e3;
        for divergence in &dpor.divergences {
            eprintln!(
                "{}: implicit/explicit divergence ({:?} driver): {}\n{}",
                benchmark.name,
                divergence.driver,
                divergence.reason,
                render_trace(&monitor, &divergence.trace),
            );
        }
        let (naive_executions, naive_ms) = if run_naive {
            let start = Instant::now();
            let naive = explore(
                &monitor,
                &table,
                &outcome.explicit,
                &workload,
                &naive_config,
            )
            .unwrap_or_else(|e| panic!("{} failed naive enumeration: {e}", benchmark.name));
            (naive.executions(), start.elapsed().as_secs_f64() * 1e3)
        } else {
            (dpor.executions(), 0.0)
        };
        per_benchmark.push(ExploreBenchmarkProfile {
            name: benchmark.name,
            dpor_executions: dpor.executions(),
            naive_executions,
            transitions: dpor.transitions(),
            dedup_hits: dpor.implicit.dedup_hits + dpor.explicit.dedup_hits,
            sleep_prunes: dpor.implicit.sleep_prunes + dpor.explicit.sleep_prunes,
            sleep_set_blocked: dpor.sleep_set_blocked(),
            disjointness_queries: dpor.disjointness_queries,
            disjointness_cache_hits: dpor.disjointness_cache_hits,
            capped_subtrees: dpor.implicit.capped_roots + dpor.explicit.capped_roots,
            divergences: dpor.divergences.len(),
            dpor_ms,
            naive_ms,
        });
    }
    ExplorationProfile {
        threads,
        ops_per_thread,
        total_dpor_executions: per_benchmark.iter().map(|p| p.dpor_executions).sum(),
        total_naive_executions: per_benchmark.iter().map(|p| p.naive_executions).sum(),
        sleep_set_blocked: per_benchmark.iter().map(|p| p.sleep_set_blocked).sum(),
        disjointness_queries: per_benchmark.iter().map(|p| p.disjointness_queries).sum(),
        disjointness_cache_hits: per_benchmark
            .iter()
            .map(|p| p.disjointness_cache_hits)
            .sum(),
        divergences: per_benchmark.iter().map(|p| p.divergences).sum(),
        per_benchmark,
    }
}

/// One benchmark under the session load generator: one report per engine.
struct LoadBenchmarkProfile {
    name: &'static str,
    reports: Vec<LoadReport>,
}

impl LoadBenchmarkProfile {
    fn report(&self, kind: EngineKind) -> &LoadReport {
        self.reports
            .iter()
            .find(|r| r.engine == kind)
            .expect("every engine was measured")
    }
}

/// The suite under closed-loop session load, implicit vs explicit engines.
struct RuntimeLoadProfile {
    config: LoadConfig,
    sessions: u64,
    samples: usize,
    per_benchmark: Vec<LoadBenchmarkProfile>,
}

/// Load-run samples per engine; the best-throughput run is reported (thread
/// spawn and first-touch page faults dominate the worst run at these sizes).
const LOAD_SAMPLES: usize = 3;

/// Additive tolerance for the per-benchmark wakeup tripwire: which threads
/// happen to find a guard already true at startup (never blocking at all) vs
/// blocking once is a scheduling coin flip, so raw counts jitter by a few per
/// worker between any two runs. Regressions the tripwire exists to catch
/// (broadcast storms re-waking every waiter) scale with the session count,
/// orders of magnitude above this bound.
fn load_wakeup_slack(workers: usize) -> usize {
    16.max(4 * workers)
}

fn load_config() -> LoadConfig {
    LoadConfig::closed_loop(
        env_usize("REPRO_LOAD_WORKERS", 4),
        env_usize("REPRO_LOAD_SESSIONS", 256) as u64,
        env_usize("REPRO_LOAD_ROUNDS", 2),
        42,
    )
}

/// Drives every benchmark's session script through all three engines,
/// keeping the best-throughput sample per engine.
fn profile_runtime_load(benchmarks: &[Benchmark]) -> RuntimeLoadProfile {
    let config = load_config();
    let mut per_benchmark = Vec::new();
    for benchmark in benchmarks {
        let outcome = analyze(benchmark);
        let mut reports = Vec::new();
        for kind in EngineKind::all() {
            let mut best: Option<LoadReport> = None;
            // Call errors are never swallowed: every sample's count is summed
            // onto the kept report (best-of-N must not discard a faulting
            // sample), and the shared tripwire in `enforce_load_tripwires`
            // fails the run on any nonzero cell.
            let mut sampled_errors = 0u64;
            for _ in 0..LOAD_SAMPLES {
                let report = measure_load(benchmark, &outcome.explicit, kind, &config);
                sampled_errors += report.call_errors;
                let better = best
                    .as_ref()
                    .map(|b| report.ops_per_sec() > b.ops_per_sec())
                    .unwrap_or(true);
                if better {
                    best = Some(report);
                }
            }
            let mut best = best.expect("at least one sample");
            best.call_errors = sampled_errors;
            reports.push(best);
        }
        per_benchmark.push(LoadBenchmarkProfile {
            name: benchmark.name,
            reports,
        });
    }
    RuntimeLoadProfile {
        sessions: config.effective_sessions(),
        config,
        samples: LOAD_SAMPLES,
        per_benchmark,
    }
}

fn print_load_table(profile: &RuntimeLoadProfile) {
    println!(
        "{:<28} {:<18} {:>9} {:>12} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "Benchmark",
        "engine",
        "ops",
        "ops/sec",
        "p50us",
        "p99us",
        "p999us",
        "wakeups",
        "avoided",
        "elided"
    );
    for b in &profile.per_benchmark {
        for report in &b.reports {
            println!(
                "{:<28} {:<18} {:>9} {:>12.0} {:>9.2} {:>9.2} {:>9.2} {:>8} {:>8} {:>8}",
                b.name,
                report.engine.label(),
                report.operations,
                report.ops_per_sec(),
                report.latency.p50() as f64 / 1e3,
                report.latency.p99() as f64 / 1e3,
                report.latency.p999() as f64 / 1e3,
                report.wakeups,
                report.avoided_wakeups,
                report.elided_notifications,
            );
        }
    }
}

/// The runtime tripwires shared by `json` and the fast `load` gate:
///
/// 1. no (benchmark, engine) cell may report a failed monitor call — a
///    faulting CCR under load is a correctness bug regardless of throughput,
///    so any nonzero `call_errors` (in *any* sample, not just the kept
///    best-of run) exits 1;
/// 2. per benchmark, the targeted explicit engine may not wake more threads
///    than the implicit engine beyond the startup-race slack;
/// 3. summed over the whole run the targeted engine must stay within one
///    (not per-benchmark) slack of the implicit engine — on benchmarks where
///    both wake exactly one thread per blocked call the totals are tied in
///    expectation, so a strict comparison would be a coin flip, while a real
///    regression (re-waking every waiter) scales with the session count;
/// 4. the fast path must prove its existence: at least one benchmark with
///    avoided wakeups and one with elided notifications.
fn enforce_load_tripwires(profile: &RuntimeLoadProfile) {
    let slack = load_wakeup_slack(profile.config.workers);
    let mut implicit_total = 0usize;
    let mut targeted_total = 0usize;
    let mut any_avoided = false;
    let mut any_elided = false;
    for b in &profile.per_benchmark {
        for report in &b.reports {
            if report.call_errors > 0 {
                eprintln!(
                    "error: {} under {}: {} monitor call(s) failed during the load run; \
                     a faulting CCR must fail the gate no matter what the throughput says",
                    b.name,
                    report.engine.label(),
                    report.call_errors
                );
                std::process::exit(1);
            }
        }
        let implicit = b.report(EngineKind::Implicit);
        let targeted = b.report(EngineKind::ExplicitTargeted);
        implicit_total += implicit.wakeups;
        targeted_total += targeted.wakeups;
        any_avoided |= targeted.avoided_wakeups > 0;
        any_elided |= targeted.elided_notifications > 0;
        if targeted.wakeups > implicit.wakeups + slack {
            eprintln!(
                "error: {}: targeted explicit engine woke {} threads vs {} implicit \
                 (slack {slack}); the targeted-signal fast path regressed into a storm",
                b.name, targeted.wakeups, implicit.wakeups
            );
            std::process::exit(1);
        }
    }
    if targeted_total > implicit_total + slack {
        eprintln!(
            "error: suite-wide targeted wakeups ({targeted_total}) exceed implicit \
             wakeups ({implicit_total}) beyond the startup-race slack ({slack})"
        );
        std::process::exit(1);
    }
    if !any_avoided {
        eprintln!(
            "error: no benchmark reported avoided wakeups; the targeted-signal \
             coalescing is dead code under load"
        );
        std::process::exit(1);
    }
    if !any_elided {
        eprintln!(
            "error: no benchmark reported elided notifications; the empty-slot \
             fast path is dead code under load"
        );
        std::process::exit(1);
    }
    println!(
        "load tripwires: zero call errors; targeted wakeups {targeted_total} vs implicit \
         {implicit_total} suite-wide (slack {slack}); fast paths exercised"
    );
}

/// One instrumented pass over the whole suite with span recording on: the
/// `observability` section's per-phase wall-time attribution, span-coverage
/// ratio and unified metrics snapshot. Runs *after* every timed profiling
/// pass so the perf numbers (and the >3x regression guard) keep measuring
/// the tracing-disabled path.
struct ObservabilityProfile {
    /// Wall time of the instrumented suite pass (the root span's duration).
    wall_ms: f64,
    /// Span/instant records flushed by the pass.
    span_count: usize,
    /// Threads that recorded at least one span.
    thread_count: usize,
    /// Fraction of the root span's wall time covered by named child spans.
    coverage: f64,
    /// Inclusive wall time and count per span name, descending.
    phases: Vec<expresso_obs::PhaseAttribution>,
    /// Unified metrics snapshot (solver, arena, WP store, disjointness,
    /// scheduler) taken right after the instrumented pass.
    metrics_json: String,
    /// Whether spans were already being recorded during the *timed* profiling
    /// passes (true only when `EXPRESSO_TRACE` is set for this run, in which
    /// case the perf numbers include the enabled-mode overhead).
    traced_during_profiling: bool,
}

fn profile_observability(traced_during_profiling: bool) -> ObservabilityProfile {
    let was_enabled = expresso_obs::enabled();
    let _ = expresso_obs::drain();
    expresso_obs::set_enabled(true);

    let pipeline = Expresso::new();
    let context = SharedAnalysisContext::new(pipeline.config());
    let registry = context.metrics_registry();
    let root = expresso_obs::SpanGuard::enter("bench.observed_suite");
    {
        let _span = expresso_obs::span!("bench.analysis");
        let monitors: Vec<_> = all().iter().map(|b| b.monitor()).collect();
        for outcome in pipeline.analyze_suite(&context, &monitors) {
            outcome.expect("suite analysis succeeds");
        }
    }
    drop(root);
    expresso_obs::set_enabled(was_enabled);
    let traces = expresso_obs::drain();

    let wall_ms = traces
        .iter()
        .flat_map(|t| t.records.iter())
        .filter(|r| r.name == "bench.observed_suite")
        .map(|r| (r.end_ns - r.start_ns) as f64 / 1e6)
        .fold(0.0, f64::max);
    let span_count = traces.iter().map(|t| t.records.len()).sum();
    let coverage = expresso_obs::span_coverage(&traces, "bench.observed_suite").unwrap_or(0.0);
    let phases = expresso_obs::attribute_phases(&traces);
    let metrics_json = registry.snapshot().to_json(2);

    // When this run is itself being traced, the instrumented pass is the
    // natural payload for the artifact — write it out instead of dropping
    // the drained spans on the floor.
    if let Some(path) = std::env::var_os(TRACE_ENV).map(PathBuf::from) {
        match expresso_obs::write_chrome_trace(&path, &traces) {
            Ok(()) => println!("observability: wrote Chrome trace to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write trace {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    ObservabilityProfile {
        wall_ms,
        span_count,
        thread_count: traces.len(),
        coverage,
        phases,
        metrics_json,
        traced_during_profiling,
    }
}

/// Serialises the profiles by hand (the workspace is dependency-free, so no
/// serde): a stable, diffable JSON document tracked across PRs.
fn render_json(
    profiles: &[AnalysisProfile],
    shared: &SharedArenaProfile,
    suite: &SchedulerSuiteProfile,
    load: &RuntimeLoadProfile,
    persistence: &PersistenceProfile,
    exploration: &ExplorationProfile,
    observability: &ObservabilityProfile,
) -> String {
    let total_cached: f64 = profiles.iter().map(|p| p.cached_ms).sum();
    let total_uncached: f64 = profiles.iter().map(|p| p.uncached_ms).sum();
    let speedup = if total_cached > 0.0 {
        total_uncached / total_cached
    } else {
        1.0
    };
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, p) in profiles.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"group\": \"{}\", \"analysis_ms\": {:.3}, \
             \"analysis_ms_uncached\": {:.3}, \"invariant_ms\": {:.3}, \
             \"placement_ms\": {:.3}, \"quantifier_eliminations\": {}, \
             \"qe_cache_hits\": {}, \"triples_checked\": {}, \
             \"pairs_considered\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_hit_rate\": {:.4}, \"wp_cache_hits\": {}, \"wp_cache_misses\": {}, \
             \"notifications\": {}, \"broadcasts\": {}}}",
            p.name,
            p.group,
            p.cached_ms,
            p.uncached_ms,
            p.invariant_ms,
            p.placement_ms,
            p.quantifier_eliminations,
            p.qe_cache_hits,
            p.triples_checked,
            p.pairs_considered,
            p.cache_hits,
            p.cache_misses,
            p.cache_hit_rate,
            p.wp_cache_hits,
            p.wp_cache_misses,
            p.notifications,
            p.broadcasts,
        );
        out.push_str(if i + 1 < profiles.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"total_analysis_ms\": {total_cached:.3},\n  \
         \"total_analysis_ms_uncached\": {total_uncached:.3},\n  \
         \"cache_speedup\": {speedup:.3},\n"
    );
    let _ = write!(out, "  \"shared_arena\": {{\n    \"per_monitor\": [\n");
    for (i, p) in shared.per_monitor.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"name\": \"{}\", \"analysis_ms\": {:.3}, \"cache_hits\": {}, \
             \"cross_monitor_cache_hits\": {}}}",
            p.name, p.analysis_ms, p.cache_hits, p.cross_analysis_hits,
        );
        out.push_str(if i + 1 < shared.per_monitor.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(
        out,
        "    ],\n    \"total_analysis_ms\": {:.3},\n    \"cache_hits\": {},\n    \
         \"cross_monitor_cache_hits\": {},\n    \"cross_monitor_hit_rate\": {:.4},\n    \
         \"formula_nodes\": {},\n    \"interner_shards\": {},\n    \
         \"arena_lock_contentions\": {},\n    \"wp_cache_hits\": {},\n    \
         \"wp_cache_misses\": {}\n  }},\n",
        shared.total_ms,
        shared.total_hits,
        shared.cross_analysis_hits,
        shared.cross_analysis_hit_rate,
        shared.formula_nodes,
        shared.interner_shards,
        shared.arena_lock_contentions,
        shared.wp_cache_hits,
        shared.wp_cache_misses,
    );
    let per_worker = suite
        .scheduler
        .per_worker_executed
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let utilization = suite
        .scheduler
        .worker_utilization()
        .iter()
        .map(|u| format!("{u:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(
        out,
        "  \"scheduler_suite\": {{\n    \"suite_size\": {},\n    \
         \"pool_wall_ms\": {:.3},\n    \"sequential_wall_ms\": {:.3},\n    \
         \"workers\": {},\n    \"tasks_executed\": {},\n    \"steals\": {},\n    \
         \"injector_pops\": {},\n    \"helper_executed\": {},\n    \
         \"abduction_tasks\": {},\n    \
         \"per_worker_executed\": [{per_worker}],\n    \
         \"worker_utilization\": [{utilization}],\n    \
         \"wp_cache_hits\": {},\n    \"wp_cache_misses\": {},\n    \
         \"wp_cross_monitor_hits\": {},\n    \"outputs_identical\": {}\n  }},\n",
        suite.suite_size,
        suite.pool_wall_ms,
        suite.sequential_wall_ms,
        suite.scheduler.workers,
        suite.scheduler.tasks_executed,
        suite.scheduler.steals,
        suite.scheduler.injector_pops,
        suite.scheduler.helper_executed,
        suite.scheduler.abduction_tasks,
        suite.wp.hits,
        suite.wp.misses,
        suite.wp.cross_monitor_hits,
        suite.outputs_identical,
    );
    let _ = write!(
        out,
        "  \"runtime_load\": {{\n    \"config\": {{\"workers\": {}, \"sessions\": {}, \
         \"rounds\": {}, \"samples\": {}}},\n    \"measurements\": [\n",
        load.config.workers, load.sessions, load.config.rounds, load.samples,
    );
    let total = load.per_benchmark.len() * 3;
    let mut written = 0usize;
    for b in &load.per_benchmark {
        for report in &b.reports {
            written += 1;
            let _ = write!(
                out,
                "      {{\"benchmark\": \"{}\", \"engine\": \"{}\", \"operations\": {}, \
                 \"ops_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"p999_us\": {:.3}, \"mean_us\": {:.3}, \"wakeups\": {}, \
                 \"predicate_evaluations\": {}, \"avoided_wakeups\": {}, \
                 \"elided_notifications\": {}, \"call_errors\": {}}}",
                b.name,
                report.engine.label(),
                report.operations,
                report.ops_per_sec(),
                report.latency.p50() as f64 / 1e3,
                report.latency.p99() as f64 / 1e3,
                report.latency.p999() as f64 / 1e3,
                report.latency.mean() / 1e3,
                report.wakeups,
                report.predicate_evaluations,
                report.avoided_wakeups,
                report.elided_notifications,
                report.call_errors,
            );
            out.push_str(if written < total { ",\n" } else { "\n" });
        }
    }
    out.push_str("    ]\n  },\n");
    let _ = write!(
        out,
        "  \"persistence\": {{\n    \"corpus_monitors\": {},\n    \"corpus_seed\": {},\n    \
         \"cache_dir\": \"{}\",\n    \"cache_dir_source\": \"{}\",\n    \
         \"cold_ms\": {:.3},\n    \"warm_ms\": {:.3},\n    \"warm_speedup\": {:.3},\n    \
         \"dirty_ms\": {:.3},\n    \"artifact_bytes\": {},\n    \
         \"artifact_entries\": {{\"sat\": {}, \"qe\": {}, \"theory\": {}, \"wp\": {}}},\n    \
         \"seeded_entries\": {},\n    \"solver_disk_hits\": {},\n    \"wp_disk_hits\": {},\n    \
         \"outcomes_identical\": {},\n    \"dirty_reanalyzed\": {},\n    \
         \"dirty_clean_misses\": {}\n  }},\n",
        persistence.corpus_monitors,
        persistence.corpus_seed,
        persistence.cache_dir,
        persistence.cache_dir_source,
        persistence.cold_ms,
        persistence.warm_ms,
        persistence.warm_speedup,
        persistence.dirty_ms,
        persistence.artifact_bytes,
        persistence.saved_sat,
        persistence.saved_qe,
        persistence.saved_theory,
        persistence.saved_wp,
        persistence.seeded_entries,
        persistence.solver_disk_hits,
        persistence.wp_disk_hits,
        persistence.outcomes_identical,
        persistence.dirty_reanalyzed,
        persistence.dirty_clean_misses,
    );
    let _ = write!(
        out,
        "  \"explore\": {{\n    \"threads\": {},\n    \"ops_per_thread\": {},\n    \
         \"per_benchmark\": [\n",
        exploration.threads, exploration.ops_per_thread,
    );
    for (i, p) in exploration.per_benchmark.iter().enumerate() {
        let reduction = p.reduction();
        let _ = write!(
            out,
            "      {{\"name\": \"{}\", \"dpor_executions\": {}, \"naive_executions\": {}, \
             \"reduction\": {:.3}, \"transitions\": {}, \"dedup_hits\": {}, \
             \"sleep_prunes\": {}, \"sleep_set_blocked\": {}, \
             \"disjointness_queries\": {}, \"disjointness_cache_hits\": {}, \
             \"capped_subtrees\": {}, \"divergences\": {}, \
             \"dpor_ms\": {:.3}, \"naive_ms\": {:.3}}}",
            p.name,
            p.dpor_executions,
            p.naive_executions,
            reduction,
            p.transitions,
            p.dedup_hits,
            p.sleep_prunes,
            p.sleep_set_blocked,
            p.disjointness_queries,
            p.disjointness_cache_hits,
            p.capped_subtrees,
            p.divergences,
            p.dpor_ms,
            p.naive_ms,
        );
        out.push_str(if i + 1 < exploration.per_benchmark.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(
        out,
        "    ],\n    \"total_dpor_executions\": {},\n    \
         \"total_naive_executions\": {},\n    \"reduction_factor\": {:.3},\n    \
         \"mean_reduction\": {:.3},\n    \"sleep_set_blocked\": {},\n    \
         \"disjointness_queries\": {},\n    \"disjointness_cache_hits\": {},\n    \
         \"divergences\": {}\n  }},\n",
        exploration.total_dpor_executions,
        exploration.total_naive_executions,
        exploration.reduction_factor(),
        exploration.mean_reduction(),
        exploration.sleep_set_blocked,
        exploration.disjointness_queries,
        exploration.disjointness_cache_hits,
        exploration.divergences,
    );
    let _ = write!(
        out,
        "  \"observability\": {{\n    \"traced_during_profiling\": {},\n    \
         \"instrumented_wall_ms\": {:.3},\n    \"span_count\": {},\n    \
         \"thread_count\": {},\n    \"span_coverage\": {:.4},\n    \"phases\": [\n",
        observability.traced_during_profiling,
        observability.wall_ms,
        observability.span_count,
        observability.thread_count,
        observability.coverage,
    );
    for (i, phase) in observability.phases.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"phase\": \"{}\", \"total_ms\": {:.3}, \"count\": {}}}",
            phase.name,
            phase.total_ns as f64 / 1e6,
            phase.count,
        );
        out.push_str(if i + 1 < observability.phases.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(
        out,
        "    ],\n    \"metrics\": {}\n  }}\n}}\n",
        observability.metrics_json,
    );
    out
}

/// Extracts the top-level `total_analysis_ms` value from a previously written
/// `BENCH_results.json` (hand-rolled: the workspace vendors no serde). The
/// top-level key precedes the `shared_arena` section's key of the same name,
/// so the first match is the right one.
fn baseline_total_ms(json: &str) -> Option<f64> {
    let key = "\"total_analysis_ms\": ";
    let start = json.find(key)? + key.len();
    let rest = &json[start..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Pulls one `"key": "value"` string field out of a single JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\": \"");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Pulls one `"key": number` field out of a single JSON line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\": ");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// A committed `runtime_load` baseline: the run shape plus throughput per
/// (benchmark, engine). Each measurement is written on its own line, so the
/// hand-rolled reader is a line scan.
struct LoadBaseline {
    workers: usize,
    sessions: u64,
    rounds: usize,
    ops_per_sec: Vec<(String, String, f64)>,
}

fn baseline_load(json: &str) -> Option<LoadBaseline> {
    let section = &json[json.find("\"runtime_load\"")?..];
    let config = section.lines().find(|l| l.contains("\"config\""))?;
    let mut ops_per_sec = Vec::new();
    for line in section.lines() {
        if let (Some(benchmark), Some(engine), Some(ops)) = (
            field_str(line, "benchmark"),
            field_str(line, "engine"),
            field_num(line, "ops_per_sec"),
        ) {
            ops_per_sec.push((benchmark.to_string(), engine.to_string(), ops));
        }
    }
    Some(LoadBaseline {
        workers: field_num(config, "workers")? as usize,
        sessions: field_num(config, "sessions")? as u64,
        rounds: field_num(config, "rounds")? as usize,
        ops_per_sec,
    })
}

/// Perf tripwire for the runtime: any (benchmark, engine) whose throughput
/// collapsed below a third of the committed baseline fails the run. Only
/// meaningful when the committed run had the same shape — a different
/// worker/session/round configuration changes what is being measured, so the
/// comparison is skipped (with a note) instead of firing spuriously.
fn enforce_load_throughput(profile: &RuntimeLoadProfile, baseline: Option<&LoadBaseline>) {
    let Some(baseline) = baseline else {
        println!("load perf tripwire: no committed runtime_load baseline; skipping comparison");
        return;
    };
    if baseline.workers != profile.config.workers
        || baseline.sessions != profile.sessions
        || baseline.rounds != profile.config.rounds
    {
        println!(
            "load perf tripwire: committed baseline has a different shape \
             ({}w/{}s/{}r vs {}w/{}s/{}r); skipping comparison",
            baseline.workers,
            baseline.sessions,
            baseline.rounds,
            profile.config.workers,
            profile.sessions,
            profile.config.rounds,
        );
        return;
    }
    let mut compared = 0usize;
    for b in &profile.per_benchmark {
        for report in &b.reports {
            let Some((_, _, committed)) = baseline
                .ops_per_sec
                .iter()
                .find(|(name, engine, _)| name == b.name && engine == report.engine.label())
            else {
                continue;
            };
            compared += 1;
            if *committed > 0.0 && report.ops_per_sec() < committed / 3.0 {
                eprintln!(
                    "error: {} under {}: {:.0} ops/sec regressed more than 3x below the \
                     committed baseline {:.0} ops/sec",
                    b.name,
                    report.engine.label(),
                    report.ops_per_sec(),
                    committed
                );
                std::process::exit(1);
            }
        }
    }
    println!("load perf tripwire: {compared} (benchmark, engine) points within 3x of baseline");
}

fn run_json() {
    println!("=== BENCH_results.json: analysis-time trajectory ===\n");
    let path = "BENCH_results.json";
    let committed = std::fs::read_to_string(path).ok();
    let baseline = committed.as_deref().and_then(baseline_total_ms);
    let load_baseline = committed.as_deref().and_then(baseline_load);
    let profiles: Vec<AnalysisProfile> = all().iter().map(profile_benchmark).collect();
    let shared = profile_shared_arena();
    let suite = profile_scheduler_suite();
    let load = profile_runtime_load(&all());
    let explore_threads = env_usize("REPRO_EXPLORE_THREADS", 3);
    let exploration = profile_exploration(
        &all(),
        explore_threads,
        env_usize("REPRO_EXPLORE_OPS", 2),
        &ExploreConfig {
            scheduler: Some(Arc::clone(Scheduler::global())),
            ..ExploreConfig::default()
        },
        true,
    );
    let persistence = profile_persistence();
    // The instrumented pass runs last so every timed profile above measured
    // the tracing-disabled path (unless the caller exported EXPRESSO_TRACE,
    // which we record in the artifact).
    let observability = profile_observability(std::env::var_os(TRACE_ENV).is_some());
    let json = render_json(
        &profiles,
        &shared,
        &suite,
        &load,
        &persistence,
        &exploration,
        &observability,
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    let total_cached: f64 = profiles.iter().map(|p| p.cached_ms).sum();
    let total_uncached: f64 = profiles.iter().map(|p| p.uncached_ms).sum();
    println!(
        "wrote {path}: {} benchmarks, total analysis {:.1} ms cached vs {:.1} ms uncached ({:.2}x)",
        profiles.len(),
        total_cached,
        total_uncached,
        if total_cached > 0.0 {
            total_uncached / total_cached
        } else {
            1.0
        },
    );
    println!(
        "shared arena: {:.1} ms for the whole suite, {} / {} memo hits crossed a monitor \
         boundary ({:.1}%), {} formula nodes interned",
        shared.total_ms,
        shared.cross_analysis_hits,
        shared.total_hits,
        shared.cross_analysis_hit_rate * 100.0,
        shared.formula_nodes,
    );
    println!(
        "wp cache: {} hits / {} misses across the shared-arena suite run; \
         {} contended arena-lock acquisitions over {} shards",
        shared.wp_cache_hits,
        shared.wp_cache_misses,
        shared.arena_lock_contentions,
        shared.interner_shards,
    );
    println!(
        "scheduler suite: {} monitors analyzed concurrently in {:.1} ms on {} workers \
         (sequential: {:.1} ms); {} tasks ({} abduction), {} steals, {} injector pops, \
         {} helper-run",
        suite.suite_size,
        suite.pool_wall_ms,
        suite.scheduler.workers,
        suite.sequential_wall_ms,
        suite.scheduler.tasks_executed,
        suite.scheduler.abduction_tasks,
        suite.scheduler.steals,
        suite.scheduler.injector_pops,
        suite.scheduler.helper_executed,
    );
    println!(
        "scheduler suite wp store: {} hits / {} misses, {} hits crossed a monitor boundary",
        suite.wp.hits, suite.wp.misses, suite.wp.cross_monitor_hits,
    );
    println!(
        "exploration: {} monitors, {} threads x {} ops: {} DPOR executions vs {} naive \
         ({:.2}x aggregate, {:.2}x mean reduction), {} sleep-set-blocked, \
         {} disjointness queries + {} cache hits, {} divergences",
        exploration.per_benchmark.len(),
        exploration.threads,
        exploration.ops_per_thread,
        exploration.total_dpor_executions,
        exploration.total_naive_executions,
        exploration.reduction_factor(),
        exploration.mean_reduction(),
        exploration.sleep_set_blocked,
        exploration.disjointness_queries,
        exploration.disjointness_cache_hits,
        exploration.divergences,
    );
    let load_ops: u64 = load
        .per_benchmark
        .iter()
        .flat_map(|b| b.reports.iter())
        .map(|r| r.operations)
        .sum();
    println!(
        "runtime load: {} benchmarks x 3 engines, {} sessions on {} workers \
         ({} ops total); tripwires follow",
        load.per_benchmark.len(),
        load.sessions,
        load.config.workers,
        load_ops,
    );
    println!(
        "persistence: {}-monitor corpus cold {:.1} ms -> warm {:.1} ms ({:.2}x), \
         {} disk hits, dirty re-analysed {} monitor(s)",
        persistence.corpus_monitors,
        persistence.cold_ms,
        persistence.warm_ms,
        persistence.warm_speedup,
        persistence.solver_disk_hits + persistence.wp_disk_hits,
        persistence.dirty_reanalyzed,
    );
    println!(
        "observability: instrumented suite pass {:.1} ms, {} spans on {} threads, \
         {:.1}% of wall time attributed to named phases",
        observability.wall_ms,
        observability.span_count,
        observability.thread_count,
        observability.coverage * 100.0,
    );
    // Persistence tripwires: warm must be served from disk, bit-identical
    // and surgically invalidated.
    enforce_persistence_tripwires(&persistence);
    // Runtime tripwires: the targeted-signal fast path must dominate the
    // implicit engine on wakeups, actually exercise its fast paths, and hold
    // throughput within 3x of the committed baseline.
    enforce_load_tripwires(&load);
    enforce_load_throughput(&load, load_baseline.as_ref());
    // Exploration tripwires: the synthesized monitors must be conformant on
    // every bounded schedule, and partial-order reduction must actually
    // reduce — a 1.0x factor means the dependence relation or the sleep/DPOR
    // machinery silently degenerated to naive enumeration.
    if exploration.divergences > 0 {
        eprintln!(
            "error: bounded exploration found {} implicit/explicit divergence(s); \
             the synthesized monitors are not conformant",
            exploration.divergences
        );
        std::process::exit(1);
    }
    // Optimality witness: source sets + wakeup trees guarantee that no
    // execution ever runs to completion with every enabled transition
    // asleep. A nonzero count means the wakeup-tree bookkeeping regressed
    // to classic (non-optimal) DPOR and is silently wasting executions.
    if exploration.sleep_set_blocked > 0 {
        eprintln!(
            "error: {} execution(s) ran to completion sleep-set-blocked; \
             Optimal DPOR must never complete a sleep-set-blocked execution",
            exploration.sleep_set_blocked
        );
        std::process::exit(1);
    }
    // A single-thread workload has exactly one schedule, so reduction is
    // impossible by construction — only enforce the tripwire when the
    // configuration admits interleavings. The floor is on the *mean* of the
    // per-benchmark reductions: the aggregate factor is dominated by the
    // biggest schedule space, so a mean below 3x means the refined
    // dependence relation or the wakeup-tree machinery degenerated on a
    // broad slice of the suite.
    if explore_threads > 1 && exploration.mean_reduction() < 3.0 {
        eprintln!(
            "error: mean per-benchmark reduction {:.2}x is below the 3x floor \
             ({} DPOR executions vs {} naive aggregate)",
            exploration.mean_reduction(),
            exploration.total_dpor_executions,
            exploration.total_naive_executions
        );
        std::process::exit(1);
    }
    // Scheduler tripwires: the pool and the sequential configuration must be
    // bit-identical (a divergence is a determinism bug in the scheduler or a
    // cache-keying unsoundness), and the suite-wide WP store must actually
    // share work across monitors.
    if !suite.outputs_identical {
        eprintln!(
            "error: suite outcomes differ between the default pool and the \
             analysis_threads=1 run; the scheduler is not a pure optimisation"
        );
        std::process::exit(1);
    }
    // Abduction must actually ride the shared pool under suite analysis:
    // zero executor tasks means the most expensive phase silently fell back
    // to sequential inline evaluation (the pre-executor regression this PR
    // removed).
    if suite.scheduler.abduction_tasks == 0 {
        eprintln!(
            "error: suite analysis dispatched zero abduction tasks on the shared \
             scheduler; invariant inference is running sequentially again"
        );
        std::process::exit(1);
    }
    if suite.wp.cross_monitor_hits == 0 {
        eprintln!(
            "error: suite-parallel run reported zero cross-monitor WP-cache hits; \
             the fingerprinted suite-wide WP store is not sharing work"
        );
        std::process::exit(1);
    }
    if suite.pool_wall_ms > suite.sequential_wall_ms {
        println!(
            "note: pool wall-clock ({:.1} ms) exceeded the sequential run ({:.1} ms) — \
             expected only on single-core machines or under heavy load",
            suite.pool_wall_ms, suite.sequential_wall_ms,
        );
    }
    // Regression tripwire for the shared arena: if no memo hit ever crosses a
    // monitor boundary the suite-wide context has silently stopped sharing —
    // fail the run (and CI) loudly instead of drifting.
    if shared.cross_analysis_hits == 0 {
        eprintln!(
            "error: shared-arena run reported zero cross-monitor cache hits; \
             the suite-wide solver context is not sharing work"
        );
        std::process::exit(1);
    }
    // Same for the WP layer: the fixpoint and placement always re-ask shared
    // (body, post) pairs, so zero hits means the cache went dead.
    if shared.wp_cache_hits == 0 {
        eprintln!(
            "error: suite run reported zero WP-cache hits; the (body, post) \
             memo layer is not sharing work"
        );
        std::process::exit(1);
    }
    // Observability tripwire: the span taxonomy must attribute at least 80%
    // of the instrumented pass's wall time — less means a whole phase lost
    // its instrumentation (or a guard is being dropped early) and the trace
    // artifact has silently gone blind.
    if observability.coverage < 0.8 {
        eprintln!(
            "error: span coverage {:.1}% of the instrumented suite pass is below the \
             80% floor; a pipeline phase lost its span instrumentation",
            observability.coverage * 100.0
        );
        std::process::exit(1);
    }
    // Perf tripwire: fail loudly when this run's total analysis time regresses
    // more than 3x over the committed baseline (the file as it was before
    // this run overwrote it). The new file is already written, so the artifact
    // still shows what happened.
    if let Some(baseline) = baseline {
        if baseline > 0.0 && total_cached > 3.0 * baseline {
            eprintln!(
                "error: total suite analysis time {total_cached:.1} ms regressed more than \
                 3x over the committed baseline {baseline:.1} ms"
            );
            std::process::exit(1);
        }
        println!(
            "perf tripwire: {total_cached:.1} ms vs committed baseline {baseline:.1} ms (limit 3x)"
        );
    } else {
        println!("perf tripwire: no committed baseline found; skipping comparison");
    }
}

/// Representative 6-benchmark subset for the CI-budgeted deeper exploration:
/// a blocking buffer, a barrier, an order-sensitive token ring, the paper's
/// motivating readers-writers, a stop-flagged dispatcher and the multi-reader
/// broadcast ring — one of every synchronization shape in the suite.
fn representative_subset() -> Vec<Benchmark> {
    const NAMES: [&str; 6] = [
        "BoundedBuffer",
        "H2OBarrier",
        "RoundRobin",
        "ReadersWriters",
        "AsyncDispatch",
        "BroadcastRing",
    ];
    all()
        .into_iter()
        .filter(|b| NAMES.contains(&b.name))
        .collect()
}

/// The CI exploration gate: deeper bounds than the `json` sweep (one more
/// operation per thread AND a deeper preemption bound — budget reclaimed by
/// the refined dependence relation + Optimal DPOR), DPOR-only (no naive
/// baseline). Exits nonzero on any divergence or any sleep-set-blocked
/// execution.
fn run_explore() {
    println!("=== Bounded schedule exploration: representative subset, preemption-bounded ===\n");
    let threads = env_usize("REPRO_EXPLORE_THREADS", 3);
    let ops = env_usize("REPRO_EXPLORE_OPS", 3);
    let bound = env_usize("REPRO_EXPLORE_PREEMPTIONS", 5);
    let config = ExploreConfig {
        preemption_bound: Some(bound),
        scheduler: Some(Arc::clone(Scheduler::global())),
        ..ExploreConfig::default()
    };
    let subset = representative_subset();
    let profile = profile_exploration(&subset, threads, ops, &config, false);
    println!(
        "{:<28} {:>12} {:>12} {:>10} {:>8} {:>8} {:>10}",
        "Benchmark", "executions", "transitions", "dedup", "capped", "ssb", "time (ms)"
    );
    for p in &profile.per_benchmark {
        println!(
            "{:<28} {:>12} {:>12} {:>10} {:>8} {:>8} {:>10.1}",
            p.name,
            p.dpor_executions,
            p.transitions,
            p.dedup_hits,
            p.capped_subtrees,
            p.sleep_set_blocked,
            p.dpor_ms
        );
    }
    println!(
        "\n{} executions across {} monitors ({} threads x {} ops, preemption bound {}); \
         {} disjointness queries + {} cache hits; {} divergences",
        profile.total_dpor_executions,
        profile.per_benchmark.len(),
        threads,
        ops,
        bound,
        profile.disjointness_queries,
        profile.disjointness_cache_hits,
        profile.divergences,
    );
    if profile.divergences > 0 {
        eprintln!(
            "error: bounded exploration found {} implicit/explicit divergence(s)",
            profile.divergences
        );
        std::process::exit(1);
    }
    if profile.sleep_set_blocked > 0 {
        eprintln!(
            "error: {} execution(s) ran to completion sleep-set-blocked; \
             Optimal DPOR must never complete a sleep-set-blocked execution",
            profile.sleep_set_blocked
        );
        std::process::exit(1);
    }
}

/// The fast runtime CI gate: the representative subset under the session
/// load generator, all three engines, with the wakeup/fast-path tripwires
/// (throughput is gated against the committed baseline by `json`, which runs
/// the full suite).
fn run_load_gate() {
    println!("=== Session load gate: representative subset, implicit vs explicit ===\n");
    let profile = profile_runtime_load(&representative_subset());
    println!(
        "workers={} sessions={} rounds={} (closed loop, best of {} samples)\n",
        profile.config.workers, profile.sessions, profile.config.rounds, profile.samples,
    );
    print_load_table(&profile);
    println!();
    enforce_load_tripwires(&profile);
}

/// The tracing CI gate: runs the representative subset end to end — parse +
/// analysis, codegen, a small bounded exploration, persistence save/load —
/// with span recording on, writes the Chrome trace artifact and validates
/// it from disk: well-formed JSON, balanced laminar nesting with monotone
/// per-thread timestamps, at least one span from each instrumented
/// subsystem, and ≥80% of the gate's wall time attributed to named spans.
/// Exits nonzero on any violation so CI catches instrumentation rot.
fn run_trace() {
    println!("=== Trace gate: representative subset with span recording on ===\n");
    let trace_path = std::env::var_os(TRACE_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("expresso-trace.json"));
    // A scratch cache directory so the persistence phase (seed + save + load)
    // runs deterministically regardless of the user's environment.
    let scratch = std::env::temp_dir().join(format!("expresso-trace-gate-{}", std::process::id()));
    let config = ExpressoConfig {
        cache_dir: Some(scratch.clone()),
        trace_path: Some(trace_path.clone()),
        ..ExpressoConfig::default()
    };
    let pipeline = Expresso::with_config(config.clone());
    // Constructing the context with a trace path enables span recording.
    let context = SharedAnalysisContext::new(&config);
    let subset = representative_subset();

    let root = expresso_obs::SpanGuard::enter("bench.trace_gate");
    let outcomes: Vec<expresso_core::AnalysisOutcome> = {
        let _span = expresso_obs::span!("bench.analysis");
        let monitors: Vec<_> = subset.iter().map(|b| b.monitor()).collect();
        pipeline
            .analyze_suite(&context, &monitors)
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|e| panic!("{} failed analysis: {e}", subset[i].name)))
            .collect()
    };
    {
        let _span = expresso_obs::span!("bench.codegen");
        for outcome in &outcomes {
            assert!(
                !to_java(&outcome.explicit).is_empty(),
                "codegen produced an empty translation"
            );
        }
    }
    {
        let _span = expresso_obs::span!("bench.explore");
        for (benchmark, outcome) in subset.iter().zip(&outcomes).take(2) {
            let monitor = benchmark.monitor();
            let table = check_monitor(&monitor).expect("benchmark checks");
            let workload = benchmark_workload(benchmark, &monitor, &table, 2, 1)
                .unwrap_or_else(|e| panic!("{} failed workload construction: {e}", benchmark.name));
            let refined =
                refine_independence(&monitor, &table, context.solver(), context.disjointness());
            let explore_config = ExploreConfig {
                independence: Some(Arc::new(RefinedIndependence {
                    table: refined,
                    queries: 0,
                    cache_hits: 0,
                })),
                scheduler: Some(Arc::clone(Scheduler::global())),
                ..ExploreConfig::default()
            };
            let result = explore(
                &monitor,
                &table,
                &outcome.explicit,
                &workload,
                &explore_config,
            )
            .unwrap_or_else(|e| panic!("{} failed exploration: {e}", benchmark.name));
            assert!(
                result.divergences.is_empty(),
                "{} diverged under the trace gate",
                benchmark.name
            );
        }
    }
    {
        let _span = expresso_obs::span!("bench.persist");
        context
            .persist()
            .expect("persisting trace-gate caches")
            .expect("the trace gate configures a cache directory");
        match expresso_persist::load(&scratch) {
            expresso_persist::LoadResult::Loaded(_) => {}
            other => panic!("trace-gate artifact failed to round-trip: {other:?}"),
        }
    }
    drop(root);

    expresso_obs::set_enabled(false);
    let (written, records) = context
        .write_trace()
        .expect("writing the Chrome trace artifact")
        .expect("the trace gate configures a trace path");
    let _ = std::fs::remove_dir_all(&scratch);
    println!("wrote {} ({records} records)", written.display());

    // Validate the artifact exactly as a consumer would: re-read it from
    // disk and check it with the exporter's own parser.
    let text = std::fs::read_to_string(&written)
        .unwrap_or_else(|e| panic!("cannot re-read {}: {e}", written.display()));
    let events = match expresso_obs::parse_chrome_trace(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: trace artifact is not well-formed Chrome trace JSON: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = expresso_obs::check_nesting(&events) {
        eprintln!("error: trace spans are not properly nested: {e}");
        std::process::exit(1);
    }
    let mut subsystems: Vec<&str> = events.iter().map(|e| e.cat.as_str()).collect();
    subsystems.sort_unstable();
    subsystems.dedup();
    for required in ["smt", "vcgen", "core", "explore"] {
        if !subsystems.contains(&required) {
            eprintln!(
                "error: trace artifact has no span from the `{required}` subsystem \
                 (saw: {subsystems:?}); its instrumentation went dark"
            );
            std::process::exit(1);
        }
    }
    if subsystems.len() < 5 {
        eprintln!(
            "error: trace artifact covers only {} subsystems ({subsystems:?}); \
             expected at least 5",
            subsystems.len()
        );
        std::process::exit(1);
    }
    let coverage = expresso_obs::trace_coverage(&events, "bench.trace_gate").unwrap_or(0.0);
    if coverage < 0.8 {
        eprintln!(
            "error: named spans cover only {:.1}% of the trace gate's wall time \
             (floor: 80%)",
            coverage * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "trace gate: {} events across {} subsystems, nesting balanced, \
         {:.1}% of wall time covered",
        events.len(),
        subsystems.len(),
        coverage * 100.0
    );
}

fn summarise(measurements: &[Measurement]) {
    let vs_autosynch = geometric_speedup(measurements, Series::Expresso, Series::AutoSynch);
    let vs_explicit = geometric_speedup(measurements, Series::Expresso, Series::Explicit);
    println!("=== Summary ===");
    println!("Expresso speed-up over AutoSynch (geomean): {vs_autosynch:.2}x (paper: 1.56x)");
    println!("Expresso vs hand-written explicit (geomean): {vs_explicit:.2}x (paper: ~1.0x)");
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match mode.as_str() {
        "fig8" => {
            let m = run_figure(&autosynch_benchmarks(), "Figure 8: AutoSynch benchmarks");
            summarise(&m);
        }
        "fig9" => {
            let m = run_figure(&github_benchmarks(), "Figure 9: GitHub monitors");
            summarise(&m);
        }
        "table1" => run_table1(),
        "json" => run_json(),
        "explore" => run_explore(),
        "load" => run_load_gate(),
        "persist" => run_persist(),
        "trace" => run_trace(),
        "suite" => {
            // Quick mode: only the scheduler-suite comparison, for iterating
            // on pool behaviour without the full per-benchmark profiling.
            let suite = profile_scheduler_suite();
            println!(
                "pool {:.1} ms vs sequential {:.1} ms on {} workers; {} tasks ({} abduction), \
                 {} steals, {} injector pops, {} helper-run; wp {} hits / {} cross-monitor; \
                 identical: {}",
                suite.pool_wall_ms,
                suite.sequential_wall_ms,
                suite.scheduler.workers,
                suite.scheduler.tasks_executed,
                suite.scheduler.abduction_tasks,
                suite.scheduler.steals,
                suite.scheduler.injector_pops,
                suite.scheduler.helper_executed,
                suite.wp.hits,
                suite.wp.cross_monitor_hits,
                suite.outputs_identical,
            );
        }
        "summary" | "all" => {
            let mut m = run_figure(&autosynch_benchmarks(), "Figure 8: AutoSynch benchmarks");
            m.extend(run_figure(
                &github_benchmarks(),
                "Figure 9: GitHub monitors",
            ));
            run_table1();
            run_json();
            summarise(&m);
        }
        other => {
            eprintln!(
                "unknown mode `{other}`; expected fig8 | fig9 | table1 | json | suite | \
                 explore | load | persist | trace | summary | all"
            );
            std::process::exit(2);
        }
    }
}

//! Regenerates the paper's evaluation artefacts as text tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p expresso-bench --bin reproduce -- fig8
//! cargo run --release -p expresso-bench --bin reproduce -- fig9
//! cargo run --release -p expresso-bench --bin reproduce -- table1
//! cargo run --release -p expresso-bench --bin reproduce -- summary
//! cargo run --release -p expresso-bench --bin reproduce -- all
//! ```
//!
//! Environment variables `REPRO_MAX_THREADS` (default 16) and `REPRO_OPS`
//! (default 200) scale the sweep; the paper uses up to 128 threads on a
//! 16-way Xeon, which is also valid here but takes correspondingly longer.

use expresso_bench::{
    analysis_time, analyze, format_figure, geometric_speedup, measure_benchmark, Measurement,
    Series,
};
use expresso_suite::{autosynch_benchmarks, github_benchmarks, scaled_thread_counts, Benchmark};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_figure(benchmarks: &[Benchmark], title: &str) -> Vec<Measurement> {
    let max_threads = env_usize("REPRO_MAX_THREADS", 16);
    let ops = env_usize("REPRO_OPS", 200);
    println!("=== {title} (saturation tests, {ops} ops/thread) ===\n");
    let mut all = Vec::new();
    for benchmark in benchmarks {
        let outcome = analyze(benchmark);
        let mut measurements = Vec::new();
        for threads in scaled_thread_counts(max_threads) {
            for series in Series::all() {
                measurements.push(measure_benchmark(
                    benchmark,
                    &outcome.explicit,
                    series,
                    threads,
                    ops,
                ));
            }
        }
        println!("{}", format_figure(benchmark.name, &measurements));
        all.extend(measurements);
    }
    all
}

fn run_table1() {
    println!("=== Table 1: analysis time per benchmark ===\n");
    println!(
        "{:<28} {:>12} {:>10} {:>12}",
        "Benchmark", "time (s)", "triples", "invariant"
    );
    let mut benchmarks = autosynch_benchmarks();
    benchmarks.extend(github_benchmarks());
    for benchmark in &benchmarks {
        let (duration, outcome) = analysis_time(benchmark);
        println!(
            "{:<28} {:>12.2} {:>10} {:>12}",
            benchmark.name,
            duration.as_secs_f64(),
            outcome.stats.triples_checked,
            outcome.stats.invariant_conjuncts,
        );
    }
}

fn summarise(measurements: &[Measurement]) {
    let vs_autosynch = geometric_speedup(measurements, Series::Expresso, Series::AutoSynch);
    let vs_explicit = geometric_speedup(measurements, Series::Expresso, Series::Explicit);
    println!("=== Summary ===");
    println!("Expresso speed-up over AutoSynch (geomean): {vs_autosynch:.2}x (paper: 1.56x)");
    println!("Expresso vs hand-written explicit (geomean): {vs_explicit:.2}x (paper: ~1.0x)");
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match mode.as_str() {
        "fig8" => {
            let m = run_figure(&autosynch_benchmarks(), "Figure 8: AutoSynch benchmarks");
            summarise(&m);
        }
        "fig9" => {
            let m = run_figure(&github_benchmarks(), "Figure 9: GitHub monitors");
            summarise(&m);
        }
        "table1" => run_table1(),
        "summary" | "all" => {
            let mut m = run_figure(&autosynch_benchmarks(), "Figure 8: AutoSynch benchmarks");
            m.extend(run_figure(&github_benchmarks(), "Figure 9: GitHub monitors"));
            run_table1();
            summarise(&m);
        }
        other => {
            eprintln!("unknown mode `{other}`; expected fig8 | fig9 | table1 | summary | all");
            std::process::exit(2);
        }
    }
}

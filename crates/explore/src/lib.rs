//! Systematic schedule exploration: a DPOR-based stateless model checker for
//! implicit-vs-explicit monitor conformance.
//!
//! The conformance harness samples seeded random schedules; this crate
//! upgrades that to *bounded exhaustive* checking. For a bounded workload
//! (each thread runs a fixed sequence of monitor calls) it enumerates every
//! schedule of one semantics — the **driver** — through the shared
//! [`expresso_semantics::Stepper`], while a **follower** stepper of the
//! other semantics executes the same events in lockstep. A follower that
//! rejects an event, or disagrees on the shared-state snapshot after one, is
//! a Definition 3.4 violation, reported with a greedily minimized
//! counterexample schedule. Running both directions (implicit driver, then
//! explicit driver) covers both trace inclusions of the definition.
//!
//! # Reduction
//!
//! Naive enumeration is factorial in the schedule length, so the DFS prunes
//! with the stateless toolkit, all keyed on the dependence relation of
//! [`dependence`] — conservatively "same shared variable with a write, same
//! CCR wait queue, or contention on the notified-set minimum of rule 2b",
//! optionally refined by a solver-discharged [`IndependenceTable`]
//! ([`ExploreConfig::independence`]) that drops fire×fire edges proven
//! conditionally independent (disjoint guards, or commuting bodies with
//! mutual guard preservation):
//!
//! * **sleep sets** — a transition fully explored at a node is redundant in
//!   every sibling subtree until a dependent transition executes;
//! * **source sets with wakeup trees (Optimal DPOR)** — when two executed
//!   transitions race, the reversal is recorded as a *wakeup sequence* (the
//!   racing transition plus the interleaved events not happens-before it)
//!   rather than a bare thread id; branching only on such sequences, and
//!   discarding the ones the sleep set proves redundant *before* running
//!   them, means no sleep-set-blocked execution is ever run to completion
//!   ([`DirectionStats::sleep_set_blocked`] stays 0);
//! * **state-fingerprint dedup** — configurations are fingerprinted
//!   (driver and follower state, via `expresso_logic`'s deterministic
//!   `FxHasher`); a revisited `(fingerprint, sleep set, bounds, incoming
//!   event)` key merges the cached subtree's counters and replays, exactly,
//!   the wakeup sequences the subtree scheduled at its parent frame (those
//!   are a function of the key alone). Subtrees whose races escape beyond
//!   their parent frame are never cached, and a hit is only taken when the
//!   cached events have no potential race with the current ancestry — so a
//!   dedup'd run explores the same schedule set, with identical counters,
//!   as a dedup-free run.
//! * **preemption bounding** (optional) — schedules with more than
//!   `preemption_bound` preemptions are cut off; unlike the above this
//!   sacrifices completeness for depth, so it is off by default and meant
//!   for CI-budgeted deep runs.
//!
//! # Parallelism
//!
//! Exploration fans out over the workspace's work-stealing
//! [`expresso_core::Scheduler`]: every schedule prefix of length
//! [`ExploreConfig::split_depth`] is expanded with *every* enabled choice —
//! a superset of any DPOR backtrack set, so every cross-prefix reordering
//! is covered by some sibling root — while later siblings still inherit
//! earlier choices into their sleep sets; each prefix's subtree is then an
//! independent DFS task. Per-subtree determinism plus exhaustive splitting
//! makes the reported counters bit-identical across worker counts.

mod dependence;
mod dfs;

pub use dependence::{Dependence, IndependenceTable};

use dfs::{explore_root, Pair, StepOutcome};
use expresso_core::Scheduler;
use expresso_logic::Valuation;
use expresso_monitor_lang::{initial_state, ExplicitMonitor, Monitor, VarTable};
use expresso_semantics::{
    minimize_schedule, Event, ExecError, ReplayVerdict, SemanticsMode, Stepper, ThreadProgram,
    ThreadSpec, Trace,
};
use expresso_suite::Benchmark;
use std::sync::Arc;

/// A solver-refined independence table plus the cost of computing it.
///
/// Built once per monitor (see `expresso_vcgen::refine_independence`) and
/// shared across exploration runs; the query counters are copied into the
/// [`ExploreReport`] so benchmark output can attribute the analysis cost.
#[derive(Debug, Clone, Default)]
pub struct RefinedIndependence {
    /// Pairwise fire×fire verdicts (`true` = proven independent), keyed on
    /// `(smaller CcrId, larger CcrId)`.
    pub table: IndependenceTable,
    /// Disjointness/commutation computations that had to run (suite-wide
    /// store misses) while building this table.
    pub queries: usize,
    /// Verdicts served from the suite-wide disjointness store.
    pub cache_hits: usize,
}

/// How schedules are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Sleep sets + classic DPOR backtracking (+ dedup when enabled):
    /// explores at least one schedule per Mazurkiewicz trace.
    Dpor,
    /// Full enumeration of every schedule — the baseline the DPOR reduction
    /// factor is measured against.
    Naive,
}

/// Configuration of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum events per execution; longer schedules are cut and counted in
    /// [`DirectionStats::depth_capped`].
    pub max_steps: usize,
    /// Maximum preemptions per schedule (`None` = unbounded, the default:
    /// the bound trades completeness for depth).
    pub preemption_bound: Option<usize>,
    /// Per-subtree cap on DFS-walked executions — a deterministic time
    /// governor for CI; capped subtrees are counted in
    /// [`DirectionStats::capped_roots`].
    pub max_executions_per_root: usize,
    /// Prefix length expanded without pruning before subtrees are handed to
    /// the scheduler.
    pub split_depth: usize,
    /// Enumeration strategy.
    pub strategy: Strategy,
    /// State-fingerprint dedup (DPOR strategy only).
    pub dedup_states: bool,
    /// Run the follower semantics in lockstep and flag divergences. Disabled
    /// for pure schedule-counting (the naive baseline).
    pub check: bool,
    /// Also enumerate spurious wake-ups when the driver is the explicit
    /// semantics (they re-block without changing state, so they multiply
    /// schedules without adding coverage; off by default).
    pub explore_spurious: bool,
    /// Pool the per-prefix subtrees are submitted to; `None` explores them
    /// sequentially on the calling thread. Counters are identical either
    /// way.
    pub scheduler: Option<Arc<Scheduler>>,
    /// Solver-refined independence verdicts; `None` (the default) keeps the
    /// purely conservative relation. Ignored when
    /// [`ExploreConfig::explore_spurious`] is on — the refinement's proofs
    /// cover the canonical wake-up discipline only.
    pub independence: Option<Arc<RefinedIndependence>>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 48,
            preemption_bound: None,
            max_executions_per_root: 50_000,
            split_depth: 2,
            strategy: Strategy::Dpor,
            dedup_states: true,
            check: true,
            explore_spurious: false,
            scheduler: None,
            independence: None,
        }
    }
}

/// Counters of one exploration direction. With dedup enabled the counters
/// still report the *logical* totals (cached subtrees contribute their
/// stored counts), so they are comparable across dedup settings and worker
/// counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirectionStats {
    /// Complete executions checked: maximal schedules plus depth-capped ones.
    pub executions: usize,
    /// Events executed across the DFS.
    pub transitions: usize,
    /// Executions cut by [`ExploreConfig::max_steps`].
    pub depth_capped: usize,
    /// Choices and continuations skipped because the sleep set proved them
    /// redundant.
    pub sleep_prunes: usize,
    /// Choices skipped by the preemption bound.
    pub preemption_prunes: usize,
    /// Subtrees answered by the state-fingerprint dedup cache.
    pub dedup_hits: usize,
    /// Executions run to completion with every enabled transition asleep —
    /// pure waste a DPOR explores only out of imprecision. The wakeup-tree
    /// algorithm discards such branches before running them, so this stays
    /// 0 under [`Strategy::Dpor`]; `reproduce` fails loudly otherwise.
    pub sleep_set_blocked: usize,
    /// Independent subtree roots after prefix splitting.
    pub frontier_roots: usize,
    /// Subtrees that hit [`ExploreConfig::max_executions_per_root`].
    pub capped_roots: usize,
}

impl DirectionStats {
    /// Adapt into a metric group for [`expresso_obs::MetricsRegistry`].
    pub fn metrics(&self) -> Vec<expresso_obs::Metric> {
        use expresso_obs::Metric;
        vec![
            Metric::counter("executions", self.executions as u64),
            Metric::counter("transitions", self.transitions as u64),
            Metric::counter("depth_capped", self.depth_capped as u64),
            Metric::counter("sleep_prunes", self.sleep_prunes as u64),
            Metric::counter("preemption_prunes", self.preemption_prunes as u64),
            Metric::counter("dedup_hits", self.dedup_hits as u64),
            Metric::counter("sleep_set_blocked", self.sleep_set_blocked as u64),
            Metric::counter("frontier_roots", self.frontier_roots as u64),
            Metric::counter("capped_roots", self.capped_roots as u64),
        ]
    }
}

impl DirectionStats {
    /// Field-wise accumulation of a subtree's counters.
    pub fn merge(&mut self, other: &DirectionStats) {
        self.executions += other.executions;
        self.transitions += other.transitions;
        self.depth_capped += other.depth_capped;
        self.sleep_prunes += other.sleep_prunes;
        self.preemption_prunes += other.preemption_prunes;
        self.dedup_hits += other.dedup_hits;
        self.sleep_set_blocked += other.sleep_set_blocked;
        self.frontier_roots += other.frontier_roots;
        self.capped_roots += other.capped_roots;
    }
}

/// A conformance violation found by the explorer.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which semantics drove the scheduling when the divergence appeared.
    pub driver: SemanticsMode,
    /// The follower's rejection (or snapshot-mismatch) description.
    pub reason: String,
    /// The minimized event schedule reproducing the divergence.
    pub trace: Trace,
}

/// The result of exploring one monitor's bounded workload.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Counters of the implicit-driver direction.
    pub implicit: DirectionStats,
    /// Counters of the explicit-driver direction.
    pub explicit: DirectionStats,
    /// Every divergence found (at most one per direction: a direction stops
    /// at its first violation).
    pub divergences: Vec<Divergence>,
    /// Disjointness/commutation computations run to build the independence
    /// table this report used (0 when unrefined or fully cache-served).
    pub disjointness_queries: usize,
    /// Independence verdicts served from the suite-wide disjointness store.
    pub disjointness_cache_hits: usize,
}

impl ExploreReport {
    /// Total executions checked across both directions.
    pub fn executions(&self) -> usize {
        self.implicit.executions + self.explicit.executions
    }

    /// Total events executed across both directions.
    pub fn transitions(&self) -> usize {
        self.implicit.transitions + self.explicit.transitions
    }

    /// `true` when no divergence was found.
    pub fn holds(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Total sleep-set-blocked executions across both directions — the
    /// optimality witness (0 for the wakeup-tree DPOR).
    pub fn sleep_set_blocked(&self) -> usize {
        self.implicit.sleep_set_blocked + self.explicit.sleep_set_blocked
    }
}

/// A bounded workload: the initial shared state plus one call sequence per
/// thread.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Initial shared monitor state (constructor-initialised fields).
    pub initial: Valuation,
    /// One program per thread.
    pub programs: Vec<ThreadProgram>,
}

/// Builds a bounded exploration workload from a suite benchmark: the
/// benchmark's balanced per-thread operation plans, truncated only by the
/// explorer's step bound.
///
/// # Errors
///
/// Propagates interpreter failures from constructing the initial state.
pub fn benchmark_workload(
    benchmark: &Benchmark,
    monitor: &Monitor,
    table: &VarTable,
    threads: usize,
    ops_per_thread: usize,
) -> Result<Workload, ExecError> {
    let ctor = (benchmark.ctor_args)(threads);
    let initial = initial_state(monitor, table, &ctor).map_err(ExecError::Runtime)?;
    let programs = (benchmark.plans)(threads, ops_per_thread)
        .into_iter()
        .map(|plan| {
            plan.into_iter()
                .map(|op| ThreadSpec::with_locals(op.method, op.locals))
                .collect()
        })
        .collect();
    Ok(Workload { initial, programs })
}

/// Systematically explores `workload`'s schedules in both directions,
/// checking implicit-vs-explicit conformance on every execution (unless
/// [`ExploreConfig::check`] is off).
///
/// # Errors
///
/// Propagates interpreter failures; divergences are *reported*, not errors.
pub fn explore(
    monitor: &Monitor,
    table: &VarTable,
    explicit: &ExplicitMonitor,
    workload: &Workload,
    config: &ExploreConfig,
) -> Result<ExploreReport, ExecError> {
    let _span = expresso_obs::span!("explore.run", "{}", monitor.name);
    let refined = if config.explore_spurious {
        None
    } else {
        config.independence.as_ref().map(|r| &r.table)
    };
    let dep =
        Dependence::with_refinement(monitor, table, explicit, config.explore_spurious, refined);
    let mut report = ExploreReport::default();
    if let Some(independence) = &config.independence {
        report.disjointness_queries = independence.queries;
        report.disjointness_cache_hits = independence.cache_hits;
    }
    for mode in [SemanticsMode::Implicit, SemanticsMode::Explicit] {
        let (stats, divergence) =
            explore_direction(mode, monitor, table, explicit, workload, &dep, config)?;
        match mode {
            SemanticsMode::Implicit => report.implicit = stats,
            SemanticsMode::Explicit => report.explicit = stats,
        }
        report.divergences.extend(divergence);
    }
    Ok(report)
}

/// Renders an event schedule for failure reports, one line per event with
/// the CCR's method label.
pub fn render_trace(monitor: &Monitor, trace: &[Event]) -> String {
    trace
        .iter()
        .enumerate()
        .map(|(i, e)| {
            format!(
                "  {i:>3}: thread {} {} {}",
                e.thread,
                if e.fired { "fires " } else { "blocks" },
                monitor.ccr_label(e.ccr),
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// A schedule prefix produced by the split phase.
struct Prefix<'a> {
    pair: Pair<'a>,
    path: Vec<Event>,
    /// Sleep set inherited across earlier siblings (DPOR strategy only): the
    /// split phase takes *every* enabled choice — a superset of any DPOR
    /// backtrack set, so the split stays complete — but later siblings still
    /// needn't re-explore schedules equivalent to an earlier sibling's.
    sleep: std::collections::BTreeSet<Event>,
    budget: Option<usize>,
    last_thread: Option<usize>,
}

fn explore_direction(
    mode: SemanticsMode,
    monitor: &Monitor,
    table: &VarTable,
    explicit: &ExplicitMonitor,
    workload: &Workload,
    dep: &Dependence,
    cfg: &ExploreConfig,
) -> Result<(DirectionStats, Option<Divergence>), ExecError> {
    let make_pair = || build_pair(mode, monitor, table, explicit, workload, cfg);

    let mut stats = DirectionStats::default();
    let minimize = |trace: Vec<Event>, reason: String| -> Divergence {
        minimize_divergence(mode, &make_pair, trace, reason)
    };

    // Phase 1: expand every schedule prefix of length `split_depth`, with no
    // pruning, so sibling roots cover every cross-prefix reordering.
    let dpor = cfg.strategy == Strategy::Dpor;
    let mut frontier = vec![Prefix {
        pair: make_pair()?,
        path: Vec::new(),
        sleep: Default::default(),
        budget: cfg.preemption_bound,
        last_thread: None,
    }];
    for _ in 0..cfg.split_depth {
        let mut next = Vec::new();
        for prefix in frontier {
            if prefix.pair.driver.steps() >= cfg.max_steps {
                stats.executions += 1;
                stats.depth_capped += 1;
                continue;
            }
            let enabled = prefix.pair.driver.enabled_events()?;
            if enabled.is_empty() {
                stats.executions += 1;
                continue;
            }
            if enabled.iter().all(|ev| prefix.sleep.contains(ev)) {
                stats.sleep_prunes += 1;
                continue;
            }
            // Later siblings inherit earlier choices into their sleep set.
            let mut sibling_sleep = prefix.sleep.clone();
            for event in enabled.iter().copied() {
                if sibling_sleep.contains(&event) {
                    stats.sleep_prunes += 1;
                    continue;
                }
                let budget = match dfs::spend_preemption_budget(
                    prefix.budget,
                    prefix.last_thread,
                    &enabled,
                    event,
                ) {
                    Some(budget) => budget,
                    None => {
                        stats.preemption_prunes += 1;
                        continue;
                    }
                };
                let mut pair = prefix.pair.clone();
                match pair.step(event)? {
                    StepOutcome::Ok => {}
                    StepOutcome::Divergence(reason) => {
                        stats.transitions += 1;
                        let mut trace = prefix.path.clone();
                        trace.push(event);
                        return Ok((stats, Some(minimize(trace, reason))));
                    }
                }
                stats.transitions += 1;
                let mut path = prefix.path.clone();
                path.push(event);
                next.push(Prefix {
                    pair,
                    path,
                    sleep: dep.inherit_sleep(&sibling_sleep, event),
                    budget,
                    last_thread: Some(event.thread),
                });
                if dpor {
                    sibling_sleep.insert(event);
                }
            }
        }
        frontier = next;
    }
    stats.frontier_roots = frontier.len();

    // Phase 2: one independent DFS per prefix, fanned out on the pool when
    // one is configured. Results are merged in frontier order either way, so
    // counters and the reported divergence are deterministic.
    use dfs::RootOutcome;
    let outcomes: Vec<RootOutcome> = match &cfg.scheduler {
        None => frontier
            .into_iter()
            .map(|p| explore_root(p.pair, p.path, p.sleep, p.budget, p.last_thread, dep, cfg))
            .collect(),
        Some(scheduler) => {
            let mut slots: Vec<Option<RootOutcome>> = Vec::new();
            slots.resize_with(frontier.len(), || None);
            scheduler.scope(|scope| {
                for (prefix, slot) in frontier.into_iter().zip(slots.iter_mut()) {
                    scope.spawn(move || {
                        *slot = Some(explore_root(
                            prefix.pair,
                            prefix.path,
                            prefix.sleep,
                            prefix.budget,
                            prefix.last_thread,
                            dep,
                            cfg,
                        ));
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every subtree explored"))
                .collect()
        }
    };
    let mut divergence = None;
    for outcome in outcomes {
        let (sub, div) = outcome?;
        stats.merge(&sub);
        if divergence.is_none() {
            divergence = div.map(|(trace, reason)| minimize(trace, reason));
        }
    }
    Ok((stats, divergence))
}

/// Builds the lockstep pair of one direction: the driver stepper plus —
/// when checking is on — the follower of the other semantics.
fn build_pair<'a>(
    mode: SemanticsMode,
    monitor: &'a Monitor,
    table: &'a VarTable,
    explicit: &'a ExplicitMonitor,
    workload: &Workload,
    cfg: &ExploreConfig,
) -> Result<Pair<'a>, ExecError> {
    // The explorer reconstructs counterexamples from its own search path, so
    // neither stepper records a trace — the DFS clones them per transition.
    let implicit = || {
        Stepper::implicit(
            monitor,
            table,
            workload.initial.clone(),
            workload.programs.clone(),
        )
        .map(|s| s.record_trace(false))
    };
    let explicit_stepper = || {
        Stepper::explicit(
            explicit,
            table,
            workload.initial.clone(),
            workload.programs.clone(),
        )
        .map(|s| s.record_trace(false))
    };
    Ok(match mode {
        SemanticsMode::Implicit => Pair {
            driver: implicit()?,
            follower: cfg.check.then(explicit_stepper).transpose()?,
        },
        SemanticsMode::Explicit => Pair {
            driver: explicit_stepper()?.with_spurious_wakeups(cfg.explore_spurious),
            follower: cfg.check.then(implicit).transpose()?,
        },
    })
}

/// Shrinks a diverging schedule with the shared greedy minimizer, replaying
/// candidates through fresh lockstep pairs.
fn minimize_divergence<'a>(
    mode: SemanticsMode,
    make_pair: &impl Fn() -> Result<Pair<'a>, ExecError>,
    trace: Vec<Event>,
    reason: String,
) -> Divergence {
    let trace = minimize_schedule(trace, |steps: &[Event]| {
        let Ok(mut pair) = make_pair() else {
            return ReplayVerdict::Stuck { step: 0 };
        };
        for (i, &event) in steps.iter().enumerate() {
            // One implementation of the lockstep rules: `Pair::step`. An
            // error (the driver rejecting the event, or an interpreter
            // failure) means the shrink produced an invalid schedule; a
            // reported divergence means the candidate still reproduces.
            match pair.step(event) {
                Err(_) => return ReplayVerdict::Stuck { step: i },
                Ok(StepOutcome::Divergence(_)) => return ReplayVerdict::Mismatch { step: i },
                Ok(StepOutcome::Ok) => {}
            }
        }
        ReplayVerdict::Match
    });
    Divergence {
        driver: mode,
        reason,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_monitor_lang::{check_monitor, parse_monitor};

    const COUNTER: &str = r#"
        monitor Counter {
            int count = 0;
            atomic void release() { count++; }
            atomic void acquire() { waituntil (count > 0) { count--; } }
        }
    "#;

    fn workload(monitor: &Monitor, table: &VarTable, threads: &[&str]) -> Workload {
        Workload {
            initial: initial_state(monitor, table, &Valuation::new()).unwrap(),
            programs: threads.iter().map(|m| vec![ThreadSpec::new(*m)]).collect(),
        }
    }

    #[test]
    fn broadcast_all_counter_is_conformant_and_dpor_reduces() {
        let monitor = parse_monitor(COUNTER).unwrap();
        let table = check_monitor(&monitor).unwrap();
        let explicit = ExplicitMonitor::broadcast_all(monitor.clone());
        let w = workload(
            &monitor,
            &table,
            &["acquire", "release", "acquire", "release"],
        );
        let dpor = explore(&monitor, &table, &explicit, &w, &ExploreConfig::default()).unwrap();
        assert!(dpor.holds(), "divergences: {:?}", dpor.divergences);
        assert!(dpor.executions() > 0);
        let naive = explore(
            &monitor,
            &table,
            &explicit,
            &w,
            &ExploreConfig {
                strategy: Strategy::Naive,
                check: false,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        assert!(
            naive.executions() > dpor.executions(),
            "naive {} vs dpor {}",
            naive.executions(),
            dpor.executions()
        );
    }

    #[test]
    fn silent_monitor_divergence_is_found_and_minimized() {
        let monitor = parse_monitor(COUNTER).unwrap();
        let table = check_monitor(&monitor).unwrap();
        let silent = ExplicitMonitor::without_signals(monitor.clone());
        let w = workload(&monitor, &table, &["acquire", "release"]);
        let report = explore(&monitor, &table, &silent, &w, &ExploreConfig::default()).unwrap();
        assert!(!report.holds(), "a never-signalling monitor must diverge");
        let divergence = &report.divergences[0];
        // Minimal reproduction: block, then the wake-up the explicit monitor
        // cannot deliver.
        assert!(
            divergence.trace.len() <= 3,
            "not minimized:\n{}",
            render_trace(&monitor, &divergence.trace)
        );
        assert!(divergence.trace.iter().any(|e| e.fired));
    }

    #[test]
    fn preemption_bound_prunes_schedules() {
        let monitor = parse_monitor(COUNTER).unwrap();
        let table = check_monitor(&monitor).unwrap();
        let explicit = ExplicitMonitor::broadcast_all(monitor.clone());
        // Two producers with two calls each: switching away from a producer
        // mid-plan is a preemption, so a bound of 0 serialises them.
        let w = Workload {
            initial: initial_state(&monitor, &table, &Valuation::new()).unwrap(),
            programs: vec![
                vec![ThreadSpec::new("release"), ThreadSpec::new("release")],
                vec![ThreadSpec::new("release"), ThreadSpec::new("release")],
            ],
        };
        let unbounded =
            explore(&monitor, &table, &explicit, &w, &ExploreConfig::default()).unwrap();
        let bounded = explore(
            &monitor,
            &table,
            &explicit,
            &w,
            &ExploreConfig {
                preemption_bound: Some(0),
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        assert!(bounded.holds());
        assert!(
            bounded.executions() < unbounded.executions(),
            "bounded {} vs unbounded {}",
            bounded.executions(),
            unbounded.executions()
        );
        assert!(bounded.implicit.preemption_prunes > 0);
    }

    #[test]
    fn dedup_changes_work_not_counters() {
        // Two counters with disjoint footprints: the `b`-phase subtrees are
        // reachable through either `a`-race order and have no races with the
        // `a` ancestry, so the relocatable guard admits cache hits — and the
        // merged counts must match a dedup-free run exactly. The fully
        // conflicting COUNTER monitor is the negative control: every subtree
        // races with its ancestry, so nothing merges, and counts trivially
        // agree.
        const SPLIT: &str = r#"
            monitor Split {
                int a = 0;
                int b = 0;
                atomic void bumpa() { a++; }
                atomic void bumpb() { b++; }
            }
        "#;
        let cases = [
            (
                SPLIT,
                vec![
                    vec!["bumpa", "bumpa"],
                    vec!["bumpa", "bumpa"],
                    vec!["bumpb", "bumpb"],
                ],
                true,
            ),
            (
                COUNTER,
                vec![
                    vec!["acquire"],
                    vec!["release"],
                    vec!["acquire"],
                    vec!["release"],
                ],
                false,
            ),
        ];
        for (source, threads, expect_hits) in cases {
            let monitor = parse_monitor(source).unwrap();
            let table = check_monitor(&monitor).unwrap();
            let explicit = ExplicitMonitor::broadcast_all(monitor.clone());
            let w = Workload {
                initial: initial_state(&monitor, &table, &Valuation::new()).unwrap(),
                programs: threads
                    .iter()
                    .map(|calls| calls.iter().map(|m| ThreadSpec::new(*m)).collect())
                    .collect(),
            };
            let with = explore(&monitor, &table, &explicit, &w, &ExploreConfig::default()).unwrap();
            let without = explore(
                &monitor,
                &table,
                &explicit,
                &w,
                &ExploreConfig {
                    dedup_states: false,
                    ..ExploreConfig::default()
                },
            )
            .unwrap();
            assert_eq!(with.executions(), without.executions());
            assert_eq!(without.implicit.dedup_hits + without.explicit.dedup_hits, 0);
            if expect_hits {
                assert!(with.implicit.dedup_hits + with.explicit.dedup_hits > 0);
            }
        }
    }

    #[test]
    fn spurious_wakeups_are_not_false_divergences() {
        // Regression: an *unconditional* signal notifies a waiter whose guard
        // is false; the waiter's rule-1b re-block is a driver-internal
        // stutter the implicit follower would reject (its wake loop never
        // notifies false-guard entries). The lockstep check must treat the
        // stutter as a no-op, not a Def-3.4 violation.
        use expresso_monitor_lang::{Notification, NotificationKind, SignalCondition};
        let monitor = parse_monitor(
            r#"
            monitor Pair {
                int count = 0;
                atomic void release() { count++; }
                atomic void acquire() { waituntil (count > 1) { count = count - 2; } }
            }
            "#,
        )
        .unwrap();
        let table = check_monitor(&monitor).unwrap();
        let release = monitor.method("release").unwrap().ccrs[0];
        let guard = monitor.method("acquire").map(|m| m.ccrs[0]).unwrap();
        let mut explicit = ExplicitMonitor::without_signals(monitor.clone());
        explicit.notifications.insert(
            release,
            vec![Notification {
                predicate: monitor.ccr(guard).guard.clone(),
                condition: SignalCondition::Unconditional,
                kind: NotificationKind::Broadcast,
            }],
        );
        let w = workload(&monitor, &table, &["acquire", "release", "release"]);
        for spurious in [false, true] {
            let report = explore(
                &monitor,
                &table,
                &explicit,
                &w,
                &ExploreConfig {
                    explore_spurious: spurious,
                    ..ExploreConfig::default()
                },
            )
            .unwrap();
            assert!(
                report.holds(),
                "spurious={spurious}: {:?}",
                report.divergences
            );
            assert!(report.executions() > 0);
        }
    }

    #[test]
    fn bounded_dpor_keeps_every_affordable_schedule() {
        // Regression: two producers whose fires are all pairwise dependent —
        // every schedule is its own Mazurkiewicz class, so within the
        // preemption bound DPOR must enumerate exactly what naive does (the
        // 4 schedules with ≤1 preemption: AABB, ABBA, BAAB, BBAA per
        // direction). A preemption-pruned backtrack seed used to leave nodes
        // childless, silently dropping affordable schedules.
        let monitor = parse_monitor(COUNTER).unwrap();
        let table = check_monitor(&monitor).unwrap();
        let explicit = ExplicitMonitor::broadcast_all(monitor.clone());
        let w = Workload {
            initial: initial_state(&monitor, &table, &Valuation::new()).unwrap(),
            programs: vec![
                vec![ThreadSpec::new("release"), ThreadSpec::new("release")],
                vec![ThreadSpec::new("release"), ThreadSpec::new("release")],
            ],
        };
        let base = ExploreConfig {
            preemption_bound: Some(1),
            ..ExploreConfig::default()
        };
        let dpor = explore(&monitor, &table, &explicit, &w, &base).unwrap();
        let naive = explore(
            &monitor,
            &table,
            &explicit,
            &w,
            &ExploreConfig {
                strategy: Strategy::Naive,
                check: false,
                ..base
            },
        )
        .unwrap();
        assert_eq!(
            naive.executions(),
            8,
            "4 affordable schedules per direction"
        );
        assert_eq!(
            dpor.executions(),
            naive.executions(),
            "fully dependent workload: bounded DPOR must match bounded naive"
        );
    }

    #[test]
    fn dedup_respects_the_preemption_bound() {
        // Regression: under a preemption bound the subtree below a state also
        // depends on which thread ran last (switching away from it is what
        // costs budget), so the dedup key must include it — otherwise a
        // cached subtree pruned from one entry path is wrongly reused on a
        // path where those schedules were affordable.
        let monitor = parse_monitor(COUNTER).unwrap();
        let table = check_monitor(&monitor).unwrap();
        let explicit = ExplicitMonitor::broadcast_all(monitor.clone());
        let w = Workload {
            initial: initial_state(&monitor, &table, &Valuation::new()).unwrap(),
            programs: vec![
                vec![ThreadSpec::new("release"), ThreadSpec::new("release")],
                vec![ThreadSpec::new("release"), ThreadSpec::new("release")],
                vec![ThreadSpec::new("acquire"), ThreadSpec::new("acquire")],
            ],
        };
        for bound in [Some(0), Some(1), Some(2)] {
            let base = ExploreConfig {
                preemption_bound: bound,
                ..ExploreConfig::default()
            };
            let with = explore(&monitor, &table, &explicit, &w, &base).unwrap();
            let without = explore(
                &monitor,
                &table,
                &explicit,
                &w,
                &ExploreConfig {
                    dedup_states: false,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(
                with.executions(),
                without.executions(),
                "bound {bound:?}: dedup changed the explored schedule set"
            );
        }
    }
}

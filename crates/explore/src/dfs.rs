//! The per-root DFS engine: source sets with wakeup trees (Optimal DPOR),
//! sleep sets, preemption bounding and fingerprint dedup over the paired
//! steppers.

use crate::dependence::Dependence;
use crate::{DirectionStats, ExploreConfig, Strategy};
use expresso_semantics::{Event, ExecError, Stepper};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// The two semantics run in lockstep: scheduling choices are drawn from the
/// *driver*'s enabled set; the *follower* (absent in counting-only runs)
/// must accept every chosen event under its own transition relation and
/// agree on the shared-state snapshot after it — the per-step form of the
/// Definition 3.4 trace-inclusion check.
#[derive(Debug, Clone)]
pub(crate) struct Pair<'a> {
    pub driver: Stepper<'a>,
    pub follower: Option<Stepper<'a>>,
}

/// Outcome of one lockstep step.
pub(crate) enum StepOutcome {
    Ok,
    /// The follower rejected the event or disagreed on the resulting state.
    Divergence(String),
}

impl Pair<'_> {
    /// Steps both semantics. The event must come from the driver's enabled
    /// set; a driver rejection is therefore an internal error, while a
    /// follower rejection is a conformance divergence.
    ///
    /// A spurious re-block (rule 1b: the driver's thread is already blocked
    /// and goes back to sleep) is driver-internal notified-set bookkeeping —
    /// it changes no observable state, and the follower's notified set
    /// legitimately differs (e.g. an unconditional signal notifies a
    /// false-guard waiter the implicit wake loop never would). Forwarding it
    /// would report a false divergence, so the follower skips the stutter.
    pub fn step(&mut self, event: Event) -> Result<StepOutcome, ExecError> {
        let stutter = !event.fired && self.driver.is_blocked(event.thread);
        self.driver.step(event)?;
        if stutter {
            return Ok(StepOutcome::Ok);
        }
        if let Some(follower) = &mut self.follower {
            match follower.step(event) {
                Ok(()) => {
                    if follower.shared() != self.driver.shared() {
                        return Ok(StepOutcome::Divergence(format!(
                            "shared-state snapshots diverged after {event}"
                        )));
                    }
                }
                Err(ExecError::Infeasible(reason)) => {
                    return Ok(StepOutcome::Divergence(format!(
                        "event {event} is infeasible for the other semantics: {reason}"
                    )))
                }
                Err(other) => return Err(other),
            }
        }
        Ok(StepOutcome::Ok)
    }

    fn fingerprint(&self) -> (u64, u64) {
        (
            self.driver.fingerprint(),
            self.follower.as_ref().map_or(0, |f| f.fingerprint()),
        )
    }
}

/// Dedup-cache key: the paired state plus everything else that determines
/// the subtree a deterministic DFS explores from it — the sleep set, the
/// forced wakeup-sequence suffix the node was entered under, the remaining
/// depth and preemption budget, and (since a preemption is relative to the
/// previously scheduled thread) which thread ran last.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: (u64, u64),
    sleep: Vec<Event>,
    forced: Vec<Event>,
    steps: usize,
    budget: Option<usize>,
    last_thread: Option<usize>,
    /// The event that created the subtree's root. Parent-frame wakeup
    /// insertions race against it, so replaying a cached subtree is only
    /// exact when the incoming event matches.
    incoming: Event,
}

/// What a fully explored subtree contributes on a dedup hit: its counters,
/// the set of events it executed, and the wakeup sequences its races
/// scheduled at its *parent* frame. Those sequences are context-independent
/// — their contents and the decision to schedule them are functions of the
/// subtree and its incoming event alone (both part of the cache key) — so
/// replaying them at another occurrence reproduces a live walk exactly,
/// which is what keeps dedup'd execution counts identical to a dedup-free
/// run. Races reaching *beyond* the parent frame are not relocatable, so a
/// hit is only taken when no cached event can race with the live ancestry
/// (the `relocatable` guard at the merge site).
struct CacheEntry {
    summary: BTreeSet<Event>,
    stats: DirectionStats,
    parent_inserts: Vec<Vec<Event>>,
}

/// One frame of the DFS stack: the configuration *before* a scheduling
/// choice, plus the exploration bookkeeping attached to it.
struct Node<'a> {
    pair: Pair<'a>,
    /// The driver's enabled events, in deterministic thread order.
    enabled: Vec<Event>,
    /// Wakeup sequences scheduled by races found deeper in the search; each
    /// becomes a forced branch unless the sleep set proves it redundant
    /// first. (Under [`Strategy::Naive`] this is pre-seeded with every
    /// enabled event, which degenerates to full enumeration.)
    pending: VecDeque<Vec<Event>>,
    /// Remainder of the wakeup sequence this node was entered under, imposed
    /// on the first branch so the race reversal that scheduled the sequence
    /// actually happens.
    forced: Vec<Event>,
    /// Whether the first (forced or free) branch has been taken; later
    /// branches come only from `pending`.
    started: bool,
    /// Events whose exploration from this node is redundant (sleep set).
    sleep: BTreeSet<Event>,
    /// Remaining preemption budget on the path to this node.
    budget: Option<usize>,
    /// Thread of the event that created this node (preemption accounting).
    last_thread: Option<usize>,
    /// Dedup key this node was created under, when caching is on.
    key: Option<CacheKey>,
    /// Counters of the subtree rooted here (cache merges included).
    sub: DirectionStats,
    /// Every event executed in the subtree rooted here.
    summary: BTreeSet<Event>,
    /// Wakeup-sequence candidates races in this node's subtree aimed at its
    /// parent frame (recorded before the reversibility filter, which is the
    /// one context-dependent condition — re-evaluated on replay).
    parent_inserts: Vec<Vec<Event>>,
}

impl<'a> Node<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        pair: Pair<'a>,
        enabled: Vec<Event>,
        sleep: BTreeSet<Event>,
        budget: Option<usize>,
        last_thread: Option<usize>,
        key: Option<CacheKey>,
        forced: Vec<Event>,
        dpor: bool,
    ) -> Self {
        // DPOR nodes branch on demand: one forced-or-free first branch, then
        // only the wakeup sequences races schedule. Naive nodes enumerate
        // every enabled event, expressed as pre-seeded singleton sequences.
        let (pending, forced, started) = if dpor {
            (VecDeque::new(), forced, false)
        } else {
            (enabled.iter().map(|e| vec![*e]).collect(), Vec::new(), true)
        };
        Node {
            pair,
            enabled,
            pending,
            forced,
            started,
            sleep,
            budget,
            last_thread,
            key,
            sub: DirectionStats::default(),
            summary: BTreeSet::new(),
            parent_inserts: Vec::new(),
        }
    }
}

/// Bitmask over path indices (the paths are bounded by
/// [`ExploreConfig::max_steps`], so one or two words in practice).
type Mask = Vec<u64>;

/// Happens-before sets of one executed event, tracked under both relations.
/// Race detection and the covered-mask skip use the refined relation (that
/// is where the reduction comes from); wakeup-sequence *contents* are
/// filtered by the conservative relation, whose independence preserves
/// enabledness, so every forced reordering is actually executable — the
/// property behind the `sleep_set_blocked == 0` optimality witness.
#[derive(Default)]
struct Hb {
    refined: Mask,
    conservative: Mask,
}

fn mask_bit(mask: &Mask, i: usize) -> bool {
    mask.get(i / 64).is_some_and(|w| w >> (i % 64) & 1 == 1)
}

fn mask_set(mask: &mut Mask, i: usize) {
    let word = i / 64;
    if mask.len() <= word {
        mask.resize(word + 1, 0);
    }
    mask[word] |= 1 << (i % 64);
}

fn mask_or(dst: &mut Mask, src: &Mask) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= *s;
    }
}

/// Optimal-DPOR race detection for executing `event` after `path`
/// (`path[i]` was executed from `stack[i]`; `hb[i]` is its happens-before
/// set as a bitmask over path indices). One downward pass finds every
/// *direct* race — a dependent `path[i]` on another thread that is not
/// already ordered before `event` through a later dependent event — and
/// schedules its reversal at `stack[i]` as a wakeup sequence: the events
/// after `i` that do not happen-after `path[i]`, then `event` itself.
/// Returns `event`'s own happens-before mask for the frame about to be
/// pushed.
fn register_races(
    stack: &mut [Node<'_>],
    path: &[Event],
    hb: &[Hb],
    event: Event,
    dep: &Dependence,
) -> Hb {
    let len = path.len();
    // Accumulates hb(event): the union of hb[i] ∪ {i} over every dependent
    // predecessor i — transitive because each hb[i] already is. `covered`
    // tracks the refined relation (race detection); `conservative` the
    // unrefined one (wakeup-sequence construction).
    let mut covered: Mask = Mask::new();
    let mut conservative: Mask = Mask::new();
    for i in (0..len).rev() {
        if dep.dependent_conservative(path[i], event) {
            mask_or(&mut conservative, &hb[i].conservative);
            mask_set(&mut conservative, i);
        }
        if !dep.dependent(path[i], event) {
            continue;
        }
        // A race is only schedulable when it is *reversible*: `event`'s
        // thread must have been schedulable at `stack[i]` at all. When it
        // was sitting in the blocked queue there (the raced-out event is
        // what woke it), the "reversal" is not an execution — the blocked
        // interleavings were already covered through the block event's own
        // races when it was executed upstream.
        let reversible = stack[i].enabled.iter().any(|e| e.thread == event.thread);
        if path[i].thread != event.thread && !mask_bit(&covered, i) {
            // The reversal's content is the conservative notdep: events
            // conservatively ordered after `path[i]` are dropped, and the
            // conservative hb masks are transitively closed, so the
            // sequence is causally downward-closed within the window and
            // executes step for step from `stack[i]`.
            let mut v: Vec<Event> = (i + 1..len)
                .filter(|&k| !mask_bit(&hb[k].conservative, i))
                .map(|k| path[k])
                .collect();
            v.push(event);
            // Record the candidate on the frame directly above i before
            // the reversibility filter: everything else about this
            // insertion is a function of that frame's subtree and
            // incoming event, while reversibility reads `stack[i]` and
            // is re-checked when a cached copy of the subtree replays
            // the candidate under a different parent.
            if !stack[i + 1].parent_inserts.contains(&v) {
                stack[i + 1].parent_inserts.push(v.clone());
            }
            if reversible {
                let node = &mut stack[i];
                if !node.pending.contains(&v) {
                    node.pending.push_back(v);
                }
            }
        }
        mask_or(&mut covered, &hb[i].refined);
        mask_set(&mut covered, i);
    }
    Hb {
        refined: covered,
        conservative,
    }
}

/// The wakeup-sequence redundancy check ("weak initials" against the sleep
/// set): `v` is redundant iff some slept event occurs in `v` with nothing
/// before it in `v` dependent on it — executing `v` would then just re-walk
/// a reordering of an already-explored subtree. The commutation argument
/// (sliding the slept event to the front of `v`) must hold from the states
/// actually traversed, so it uses the conservative relation; the refined
/// one only holds under co-enabledness.
fn redundant_by_sleep(v: &[Event], sleep: &BTreeSet<Event>, dep: &Dependence) -> bool {
    v.iter().enumerate().any(|(m, ev)| {
        sleep.contains(ev) && v[..m].iter().all(|u| !dep.dependent_conservative(*u, *ev))
    })
}

/// Whether some slept transition commutes (conservatively — footprint
/// disjointness, the unconditional relation) with *every* event any other
/// thread can still produce. When it does, the whole subtree is covered by
/// the sibling that ran the slept transition first: any continuation either
/// fires it (slide it to the front — equivalent to the explored sibling) or
/// starves into a state where it is the only enabled transition, still
/// asleep. Optimal DPOR never enters such a subtree; this is the check that
/// cuts it at the door instead of discovering the starvation at the leaf as
/// a sleep-set-blocked execution.
///
/// Only *other* threads' residuals matter: the slept transition is its own
/// thread's next step, so program order already keeps that thread from
/// running ahead of it.
fn starved_by_sleep(sleep: &BTreeSet<Event>, driver: &Stepper<'_>, dep: &Dependence) -> bool {
    sleep.iter().any(|s| {
        (0..driver.thread_count())
            .filter(|&t| t != s.thread)
            .all(|t| {
                driver.residual_ccrs(t).into_iter().all(|ccr| {
                    [true, false].into_iter().all(|fired| {
                        !dep.dependent_conservative(
                            *s,
                            Event {
                                thread: t,
                                ccr,
                                fired,
                            },
                        )
                    })
                })
            })
    })
}

/// Spends preemption budget for executing `event` after `last_thread`: a
/// preemption is switching away from a thread that still has an enabled
/// event. Returns the child's remaining budget, or `None` when the bound is
/// exhausted and the choice must be pruned. Shared by the split phase and
/// the DFS so the two cannot drift.
pub(crate) fn spend_preemption_budget(
    budget: Option<usize>,
    last_thread: Option<usize>,
    enabled: &[Event],
    event: Event,
) -> Option<Option<usize>> {
    let preempts =
        last_thread.is_some_and(|q| q != event.thread && enabled.iter().any(|e| e.thread == q));
    match budget {
        Some(0) if preempts => None,
        Some(b) => Some(Some(b - usize::from(preempts))),
        None => Some(None),
    }
}

/// A subtree exploration result: the counters plus, when the lockstep check
/// failed, the full diverging event sequence with the follower's reason.
pub(crate) type RootOutcome = Result<(DirectionStats, Option<(Vec<Event>, String)>), ExecError>;

/// Exhaustively explores the subtree rooted at `root` (created by executing
/// `prefix` from the initial configuration). Returns the subtree's counters
/// and, when the lockstep check failed, the full diverging event sequence
/// with the follower's reason.
pub(crate) fn explore_root<'a>(
    root: Pair<'a>,
    prefix: Vec<Event>,
    sleep: BTreeSet<Event>,
    budget: Option<usize>,
    last_thread: Option<usize>,
    dep: &Dependence,
    cfg: &ExploreConfig,
) -> RootOutcome {
    let _span = expresso_obs::span!("explore.subtree");
    let dpor = cfg.strategy == Strategy::Dpor;
    let dedup = dpor && cfg.dedup_states;
    let mut cache: HashMap<CacheKey, CacheEntry> = HashMap::new();
    let mut stats = DirectionStats::default();
    // Live executions actually walked by this DFS (cache merges excluded):
    // the wall-clock governor behind `max_executions_per_root`.
    let mut live_execs = 0usize;

    let enabled = root.driver.enabled_events()?;
    if root.driver.steps() >= cfg.max_steps {
        stats.executions += 1;
        stats.depth_capped += 1;
        return Ok((stats, None));
    }
    if enabled.is_empty() {
        stats.executions += 1;
        return Ok((stats, None));
    }
    if enabled.iter().all(|ev| sleep.contains(ev)) {
        // A split-phase prefix whose every continuation an earlier sibling
        // covers: cut before any work is done.
        stats.sleep_prunes += 1;
        return Ok((stats, None));
    }
    if dpor && starved_by_sleep(&sleep, &root.driver, dep) {
        // A slept transition commutes with this root's entire residual
        // program: every descent here would starve into a sleep-set-blocked
        // leaf. Covered by the sibling root that ran it first.
        stats.sleep_prunes += 1;
        return Ok((stats, None));
    }
    let mut stack = vec![Node::new(
        root,
        enabled,
        sleep,
        budget,
        last_thread,
        None,
        Vec::new(),
        dpor,
    )];
    // path[i] is the event executed from stack[i]; len == stack.len() - 1.
    let mut path: Vec<Event> = Vec::new();
    // hb[i]: happens-before set of path[i], as a bitmask over path indices.
    let mut hb: Vec<Hb> = Vec::new();

    loop {
        if live_execs >= cfg.max_executions_per_root {
            stats.capped_roots = 1;
            for node in stack {
                stats.merge(&node.sub);
            }
            return Ok((stats, None));
        }
        let top_idx = stack.len() - 1;

        // Select the next branch. The first branch honours the forced wakeup
        // suffix (falling back to a free choice when it is stale, slept or
        // unaffordable); every later branch is a pending wakeup sequence
        // that survives the sleep-set redundancy check.
        let mut selection: Option<(Event, Option<usize>, Vec<Event>)> = None;
        loop {
            let top = &mut stack[top_idx];
            if !top.started {
                top.started = true;
                let forced = std::mem::take(&mut top.forced);
                if let Some(first) = forced.first() {
                    let actual = top
                        .enabled
                        .iter()
                        .copied()
                        .find(|e| e.thread == first.thread)
                        .filter(|ev| !top.sleep.contains(ev));
                    if let Some(ev) = actual {
                        match spend_preemption_budget(top.budget, top.last_thread, &top.enabled, ev)
                        {
                            Some(b) => {
                                selection = Some((ev, b, forced[1..].to_vec()));
                                break;
                            }
                            None => top.sub.preemption_prunes += 1,
                        }
                    }
                }
                for ev in top.enabled.clone() {
                    if top.sleep.contains(&ev) {
                        continue;
                    }
                    match spend_preemption_budget(top.budget, top.last_thread, &top.enabled, ev) {
                        Some(b) => {
                            selection = Some((ev, b, Vec::new()));
                            break;
                        }
                        None => top.sub.preemption_prunes += 1,
                    }
                }
                if selection.is_some() {
                    break;
                }
                continue;
            }
            let Some(v) = top.pending.pop_front() else {
                break;
            };
            if dpor && redundant_by_sleep(&v, &top.sleep, dep) {
                top.sub.sleep_prunes += 1;
                continue;
            }
            let Some(ev) = top
                .enabled
                .iter()
                .copied()
                .find(|e| e.thread == v[0].thread)
            else {
                // The sequence's first thread is no longer schedulable in
                // this shape (its event changed across the reordering):
                // degrade to the conservative thread-granularity fallback.
                for ev in top.enabled.clone() {
                    let v = vec![ev];
                    if !top.pending.contains(&v) {
                        top.pending.push_back(v);
                    }
                }
                continue;
            };
            if top.sleep.contains(&ev) {
                top.sub.sleep_prunes += 1;
                continue;
            }
            match spend_preemption_budget(top.budget, top.last_thread, &top.enabled, ev) {
                Some(b) => {
                    selection = Some((ev, b, v[1..].to_vec()));
                    break;
                }
                None => top.sub.preemption_prunes += 1,
            }
        }
        let Some((event, child_budget, forced_rest)) = selection else {
            // Node exhausted: cache the completed subtree and fold it into
            // the parent.
            let mut node = stack.pop().expect("loop runs with a non-empty stack");
            if let Some(key) = node.key.take() {
                cache.insert(
                    key,
                    CacheEntry {
                        summary: node.summary.clone(),
                        stats: node.sub.clone(),
                        parent_inserts: node.parent_inserts.clone(),
                    },
                );
            }
            let Some(parent) = stack.last_mut() else {
                stats.merge(&node.sub);
                return Ok((stats, None));
            };
            let incoming = path.pop().expect("non-root frame has an incoming event");
            hb.pop();
            parent.sub.merge(&node.sub);
            if dpor {
                parent.sleep.insert(incoming);
            }
            parent.summary.insert(incoming);
            parent.summary.extend(node.summary.iter().copied());
            continue;
        };

        let event_hb = if dpor {
            register_races(&mut stack, &path, &hb, event, dep)
        } else {
            Hb::default()
        };

        let mut child_pair = stack[top_idx].pair.clone();
        match child_pair.step(event)? {
            StepOutcome::Ok => {}
            StepOutcome::Divergence(reason) => {
                let mut full = prefix;
                full.extend(path.iter().copied());
                full.push(event);
                for node in stack {
                    stats.merge(&node.sub);
                }
                stats.transitions += 1;
                return Ok((stats, Some((full, reason))));
            }
        }
        stack[top_idx].sub.transitions += 1;

        let child_sleep: BTreeSet<Event> = if dpor {
            dep.inherit_sleep(&stack[top_idx].sleep, event)
        } else {
            BTreeSet::new()
        };
        let child_enabled = child_pair.driver.enabled_events()?;

        // Terminal child states are accounted without pushing a frame.
        let terminal = if child_pair.driver.steps() >= cfg.max_steps {
            Some((1usize, 1usize, 0usize, 0usize)) // (executions, depth_capped, blocked, starved)
        } else if child_enabled.is_empty() {
            Some((1, 0, 0, 0))
        } else if child_enabled.iter().all(|ev| child_sleep.contains(ev)) {
            // Every remaining continuation is equivalent to an explored
            // execution. How we got here decides the classification: a
            // *block* step writes nothing and notifies nobody, so no other
            // thread can observe it — the branch ran nothing beyond its
            // parent's prefix and is cut as an ordinary sleep prune. A
            // *fired* step did real work to reach a covered state, which is
            // exactly the sleep-set-blocked waste Optimal DPOR must never
            // produce: count it in the optimality-witness counter.
            if event.fired {
                Some((0, 0, 1, 0))
            } else {
                Some((0, 0, 0, 1))
            }
        } else if dpor && starved_by_sleep(&child_sleep, &child_pair.driver, dep) {
            // A slept transition commutes with the entire residual program:
            // the subtree can only end sleep-set-blocked, and the sibling
            // that ran the slept transition first already covers it.
            Some((0, 0, 0, 1))
        } else {
            None
        };
        if let Some((execs, capped, blocked, starved)) = terminal {
            let top = &mut stack[top_idx];
            top.sub.executions += execs;
            top.sub.depth_capped += capped;
            top.sub.sleep_set_blocked += blocked;
            top.sub.sleep_prunes += starved;
            live_execs += execs;
            if dpor {
                top.sleep.insert(event);
            }
            top.summary.insert(event);
            continue;
        }

        let key = dedup.then(|| CacheKey {
            fingerprint: child_pair.fingerprint(),
            sleep: child_sleep.iter().copied().collect(),
            forced: forced_rest.clone(),
            steps: child_pair.driver.steps(),
            budget: child_budget,
            // Which thread ran last shapes the subtree only while a
            // preemption bound is active; keying on it unconditionally would
            // needlessly split identical unbounded subtrees.
            last_thread: child_budget.and(Some(event.thread)),
            incoming: event,
        });
        let merge = key.as_ref().and_then(|k| cache.get(k)).and_then(|entry| {
            // Exactness guard: a live walk of the subtree must register no
            // race against any frame strictly above the current one — those
            // reversals are not captured by the entry. The incoming event
            // itself is part of the key, so its parent-frame races are.
            let relocatable = entry.summary.iter().all(|ev| {
                path.iter()
                    .all(|p| p.thread == ev.thread || !dep.dependent(*p, *ev))
            });
            relocatable.then(|| {
                (
                    entry.stats.clone(),
                    entry.summary.iter().copied().collect::<Vec<Event>>(),
                    entry.parent_inserts.clone(),
                )
            })
        });
        if let Some((merged_stats, summary, inserts)) = merge {
            let top = &mut stack[top_idx];
            // Replay the wakeup sequences the subtree scheduled at its
            // parent frame, re-checking reversibility (the one condition
            // that reads this frame rather than the subtree).
            for v in inserts {
                let target = *v.last().expect("wakeup sequences are non-empty");
                let reversible = top.enabled.iter().any(|e| e.thread == target.thread);
                if reversible && !top.pending.contains(&v) {
                    top.pending.push_back(v);
                }
            }
            top.sub.dedup_hits += 1;
            top.sub.merge(&merged_stats);
            top.sleep.insert(event);
            top.summary.insert(event);
            top.summary.extend(summary);
            continue;
        }

        path.push(event);
        hb.push(event_hb);
        stack.push(Node::new(
            child_pair,
            child_enabled,
            child_sleep,
            child_budget,
            Some(event.thread),
            key,
            forced_rest,
            dpor,
        ));
    }
}

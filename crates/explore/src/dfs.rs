//! The per-root DFS engine: sleep sets, classic DPOR backtracking,
//! preemption bounding and fingerprint dedup over the paired steppers.

use crate::dependence::Dependence;
use crate::{DirectionStats, ExploreConfig, Strategy};
use expresso_semantics::{Event, ExecError, Stepper};
use std::collections::{BTreeSet, HashMap};

/// The two semantics run in lockstep: scheduling choices are drawn from the
/// *driver*'s enabled set; the *follower* (absent in counting-only runs)
/// must accept every chosen event under its own transition relation and
/// agree on the shared-state snapshot after it — the per-step form of the
/// Definition 3.4 trace-inclusion check.
#[derive(Debug, Clone)]
pub(crate) struct Pair<'a> {
    pub driver: Stepper<'a>,
    pub follower: Option<Stepper<'a>>,
}

/// Outcome of one lockstep step.
pub(crate) enum StepOutcome {
    Ok,
    /// The follower rejected the event or disagreed on the resulting state.
    Divergence(String),
}

impl Pair<'_> {
    /// Steps both semantics. The event must come from the driver's enabled
    /// set; a driver rejection is therefore an internal error, while a
    /// follower rejection is a conformance divergence.
    ///
    /// A spurious re-block (rule 1b: the driver's thread is already blocked
    /// and goes back to sleep) is driver-internal notified-set bookkeeping —
    /// it changes no observable state, and the follower's notified set
    /// legitimately differs (e.g. an unconditional signal notifies a
    /// false-guard waiter the implicit wake loop never would). Forwarding it
    /// would report a false divergence, so the follower skips the stutter.
    pub fn step(&mut self, event: Event) -> Result<StepOutcome, ExecError> {
        let stutter = !event.fired && self.driver.is_blocked(event.thread);
        self.driver.step(event)?;
        if stutter {
            return Ok(StepOutcome::Ok);
        }
        if let Some(follower) = &mut self.follower {
            match follower.step(event) {
                Ok(()) => {
                    if follower.shared() != self.driver.shared() {
                        return Ok(StepOutcome::Divergence(format!(
                            "shared-state snapshots diverged after {event}"
                        )));
                    }
                }
                Err(ExecError::Infeasible(reason)) => {
                    return Ok(StepOutcome::Divergence(format!(
                        "event {event} is infeasible for the other semantics: {reason}"
                    )))
                }
                Err(other) => return Err(other),
            }
        }
        Ok(StepOutcome::Ok)
    }

    fn fingerprint(&self) -> (u64, u64) {
        (
            self.driver.fingerprint(),
            self.follower.as_ref().map_or(0, |f| f.fingerprint()),
        )
    }
}

/// Dedup-cache key: the paired state plus everything else that determines
/// the subtree a deterministic DFS explores from it — the sleep set, the
/// remaining depth and preemption budget, and (since a preemption is
/// relative to the previously scheduled thread) which thread ran last.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: (u64, u64),
    sleep: Vec<Event>,
    steps: usize,
    budget: Option<usize>,
    last_thread: Option<usize>,
}

/// What a fully explored subtree contributes on a dedup hit: its counters
/// (merged so reported totals match a dedup-free run) and the set of events
/// it executed (replayed through the DPOR update so backtrack points the cut
/// subtree would have registered upstream are still registered).
struct CacheEntry {
    summary: BTreeSet<Event>,
    stats: DirectionStats,
}

/// One frame of the DFS stack: the configuration *before* a scheduling
/// choice, plus the exploration bookkeeping attached to it.
struct Node<'a> {
    pair: Pair<'a>,
    /// The driver's enabled events, in deterministic thread order.
    enabled: Vec<Event>,
    /// Threads DPOR has scheduled for exploration from this node.
    backtrack: BTreeSet<usize>,
    /// Threads already explored (or pruned) from this node.
    done: BTreeSet<usize>,
    /// Events whose exploration from this node is redundant (sleep set).
    sleep: BTreeSet<Event>,
    /// Remaining preemption budget on the path to this node.
    budget: Option<usize>,
    /// Thread of the event that created this node (preemption accounting).
    last_thread: Option<usize>,
    /// Dedup key this node was created under, when caching is on.
    key: Option<CacheKey>,
    /// Counters of the subtree rooted here (cache merges included).
    sub: DirectionStats,
    /// Every event executed in the subtree rooted here.
    summary: BTreeSet<Event>,
}

impl<'a> Node<'a> {
    fn new(
        pair: Pair<'a>,
        enabled: Vec<Event>,
        sleep: BTreeSet<Event>,
        budget: Option<usize>,
        last_thread: Option<usize>,
        key: Option<CacheKey>,
        dpor: bool,
    ) -> Self {
        let mut backtrack = BTreeSet::new();
        if dpor {
            // Seed with the first non-sleeping choice; DPOR adds the rest on
            // demand as dependent events turn up deeper in the search.
            if let Some(first) = enabled.iter().find(|ev| !sleep.contains(ev)) {
                backtrack.insert(first.thread);
            }
        } else {
            backtrack.extend(enabled.iter().map(|e| e.thread));
        }
        Node {
            pair,
            enabled,
            backtrack,
            done: BTreeSet::new(),
            sleep,
            budget,
            last_thread,
            key,
            sub: DirectionStats::default(),
            summary: BTreeSet::new(),
        }
    }
}

/// Registers the DPOR backtrack point for executing `target` after the
/// events of `path` (`path[i]` was executed from `stack[i]`), with `extra`
/// standing for an event conceptually executed from the top frame. Scans for
/// the most recent dependent event: a same-thread hit means program order
/// already serialises the pair (nothing to do); any other hit schedules
/// `target`'s thread at the state before that event — or every enabled
/// thread there when `target`'s thread was not enabled (the classic
/// conservative fallback).
fn dpor_update(
    stack: &mut [Node<'_>],
    path: &[Event],
    extra: Option<Event>,
    target: Event,
    dep: &Dependence,
) {
    let len = path.len() + usize::from(extra.is_some());
    for i in (0..len).rev() {
        let executed = if i == path.len() {
            extra.expect("index beyond path implies extra")
        } else {
            path[i]
        };
        if !dep.dependent(executed, target) {
            continue;
        }
        if executed.thread == target.thread {
            return;
        }
        let pre = &mut stack[i];
        if pre.enabled.iter().any(|e| e.thread == target.thread) {
            pre.backtrack.insert(target.thread);
        } else {
            let all: Vec<usize> = pre.enabled.iter().map(|e| e.thread).collect();
            pre.backtrack.extend(all);
        }
        return;
    }
}

/// Spends preemption budget for executing `event` after `last_thread`: a
/// preemption is switching away from a thread that still has an enabled
/// event. Returns the child's remaining budget, or `None` when the bound is
/// exhausted and the choice must be pruned. Shared by the split phase and
/// the DFS so the two cannot drift.
pub(crate) fn spend_preemption_budget(
    budget: Option<usize>,
    last_thread: Option<usize>,
    enabled: &[Event],
    event: Event,
) -> Option<Option<usize>> {
    let preempts =
        last_thread.is_some_and(|q| q != event.thread && enabled.iter().any(|e| e.thread == q));
    match budget {
        Some(0) if preempts => None,
        Some(b) => Some(Some(b - usize::from(preempts))),
        None => Some(None),
    }
}

/// A subtree exploration result: the counters plus, when the lockstep check
/// failed, the full diverging event sequence with the follower's reason.
pub(crate) type RootOutcome = Result<(DirectionStats, Option<(Vec<Event>, String)>), ExecError>;

/// Exhaustively explores the subtree rooted at `root` (created by executing
/// `prefix` from the initial configuration). Returns the subtree's counters
/// and, when the lockstep check failed, the full diverging event sequence
/// with the follower's reason.
pub(crate) fn explore_root<'a>(
    root: Pair<'a>,
    prefix: Vec<Event>,
    sleep: BTreeSet<Event>,
    budget: Option<usize>,
    last_thread: Option<usize>,
    dep: &Dependence,
    cfg: &ExploreConfig,
) -> RootOutcome {
    let dpor = cfg.strategy == Strategy::Dpor;
    let dedup = dpor && cfg.dedup_states;
    let mut cache: HashMap<CacheKey, CacheEntry> = HashMap::new();
    let mut stats = DirectionStats::default();
    // Live executions actually walked by this DFS (cache merges excluded):
    // the wall-clock governor behind `max_executions_per_root`.
    let mut live_execs = 0usize;

    let enabled = root.driver.enabled_events()?;
    if root.driver.steps() >= cfg.max_steps {
        stats.executions += 1;
        stats.depth_capped += 1;
        return Ok((stats, None));
    }
    if enabled.is_empty() {
        stats.executions += 1;
        return Ok((stats, None));
    }
    if enabled.iter().all(|ev| sleep.contains(ev)) {
        stats.sleep_prunes += 1;
        return Ok((stats, None));
    }
    let mut stack = vec![Node::new(
        root,
        enabled,
        sleep,
        budget,
        last_thread,
        None,
        dpor,
    )];
    // path[i] is the event executed from stack[i]; len == stack.len() - 1.
    let mut path: Vec<Event> = Vec::new();

    loop {
        if live_execs >= cfg.max_executions_per_root {
            stats.capped_roots = 1;
            for node in stack {
                stats.merge(&node.sub);
            }
            return Ok((stats, None));
        }
        let top_idx = stack.len() - 1;
        let choice = {
            let top = &stack[top_idx];
            top.enabled.iter().copied().find(|ev| {
                top.backtrack.contains(&ev.thread)
                    && !top.done.contains(&ev.thread)
                    && !top.sleep.contains(ev)
            })
        };
        let Some(event) = choice else {
            // Node exhausted: account sleeping choices DPOR scheduled but the
            // sleep set proved redundant, cache the completed subtree, and
            // fold it into the parent.
            let mut node = stack.pop().expect("loop runs with a non-empty stack");
            for ev in &node.enabled {
                if node.backtrack.contains(&ev.thread)
                    && !node.done.contains(&ev.thread)
                    && node.sleep.contains(ev)
                {
                    node.sub.sleep_prunes += 1;
                }
            }
            if let Some(key) = node.key.take() {
                cache.insert(
                    key,
                    CacheEntry {
                        summary: node.summary.clone(),
                        stats: node.sub.clone(),
                    },
                );
            }
            let Some(parent) = stack.last_mut() else {
                stats.merge(&node.sub);
                return Ok((stats, None));
            };
            let incoming = path.pop().expect("non-root frame has an incoming event");
            parent.sub.merge(&node.sub);
            if dpor {
                parent.sleep.insert(incoming);
            }
            parent.summary.insert(incoming);
            parent.summary.extend(node.summary.iter().copied());
            continue;
        };
        stack[top_idx].done.insert(event.thread);

        let child_budget = {
            let top = &mut stack[top_idx];
            match spend_preemption_budget(top.budget, top.last_thread, &top.enabled, event) {
                Some(budget) => budget,
                None => {
                    top.sub.preemption_prunes += 1;
                    // With the budget exhausted, the only affordable choice
                    // is continuing the last-scheduled thread. DPOR may have
                    // seeded the backtrack set with a (now pruned) preempting
                    // thread only — schedule the free continuation so the
                    // bound never leaves a node childless while an
                    // affordable schedule remains.
                    if let Some(q) = top.last_thread {
                        if top.enabled.iter().any(|e| e.thread == q) {
                            top.backtrack.insert(q);
                        }
                    }
                    continue;
                }
            }
        };

        if dpor {
            dpor_update(&mut stack, &path, None, event, dep);
        }

        let mut child_pair = stack[top_idx].pair.clone();
        match child_pair.step(event)? {
            StepOutcome::Ok => {}
            StepOutcome::Divergence(reason) => {
                let mut full = prefix;
                full.extend(path.iter().copied());
                full.push(event);
                for node in stack {
                    stats.merge(&node.sub);
                }
                stats.transitions += 1;
                return Ok((stats, Some((full, reason))));
            }
        }
        stack[top_idx].sub.transitions += 1;

        let child_sleep: BTreeSet<Event> = if dpor {
            dep.inherit_sleep(&stack[top_idx].sleep, event)
        } else {
            BTreeSet::new()
        };
        let child_enabled = child_pair.driver.enabled_events()?;

        // Terminal child states are accounted without pushing a frame.
        let terminal = if child_pair.driver.steps() >= cfg.max_steps {
            Some((1usize, 1usize, 0usize)) // (executions, depth_capped, sleep)
        } else if child_enabled.is_empty() {
            Some((1, 0, 0))
        } else if child_enabled.iter().all(|ev| child_sleep.contains(ev)) {
            // Every continuation is equivalent to an explored execution.
            Some((0, 0, 1))
        } else {
            None
        };
        if let Some((execs, capped, slept)) = terminal {
            let top = &mut stack[top_idx];
            top.sub.executions += execs;
            top.sub.depth_capped += capped;
            top.sub.sleep_prunes += slept;
            live_execs += execs;
            if dpor {
                top.sleep.insert(event);
            }
            top.summary.insert(event);
            continue;
        }

        let key = dedup.then(|| CacheKey {
            fingerprint: child_pair.fingerprint(),
            sleep: child_sleep.iter().copied().collect(),
            steps: child_pair.driver.steps(),
            budget: child_budget,
            // Which thread ran last shapes the subtree only while a
            // preemption bound is active; keying on it unconditionally would
            // needlessly split identical unbounded subtrees.
            last_thread: child_budget.and(Some(event.thread)),
        });
        if let Some(entry) = key.as_ref().and_then(|k| cache.get(k)) {
            let merged_stats = entry.stats.clone();
            let summary: Vec<Event> = entry.summary.iter().copied().collect();
            // The cut subtree's events still owe their upstream backtrack
            // registrations; replaying them against the current stack is a
            // sound over-approximation (see the module docs of `lib.rs`).
            for ev in summary.iter().copied() {
                dpor_update(&mut stack, &path, Some(event), ev, dep);
            }
            let top = &mut stack[top_idx];
            top.sub.dedup_hits += 1;
            top.sub.merge(&merged_stats);
            top.sleep.insert(event);
            top.summary.insert(event);
            top.summary.extend(summary);
            continue;
        }

        path.push(event);
        stack.push(Node::new(
            child_pair,
            child_enabled,
            child_sleep,
            child_budget,
            Some(event.thread),
            key,
            dpor,
        ));
    }
}

//! The static dependence relation DPOR and the sleep sets prune with.
//!
//! Two transitions are *independent* when, from any configuration where both
//! are enabled, executing them in either order reaches the same configuration
//! and neither enables or disables the other — in **both** semantics, since
//! the explorer runs the implicit and explicit relations in lockstep. The
//! relation below over-approximates dependence (sound for partial-order
//! reduction; imprecision only costs reduction, never coverage) from three
//! statically computed ingredients per `(CCR, fired)` transition shape:
//!
//! * **shared variables** — a transition that writes a shared variable is
//!   dependent with any transition reading or writing it (guard evaluation
//!   included);
//! * **CCR queues** — a blocking guard identifies a wait queue; a block and
//!   any notification (explicit `signal`/`broadcast`, or the implicit wake
//!   loop, which notifies every queue whose guard mentions a written
//!   variable) touching the same queue are dependent;
//! * **the notified set** — rule (2b) serialises wake-ups through the global
//!   minimum of the notified set, so any transition that can mutate that set
//!   (a fire of a blocking CCR, which removes its own entry, or a fire that
//!   can notify someone) is dependent with any fire whose enabledness can
//!   hinge on being the minimum (a fire of a blocking CCR).

use expresso_monitor_lang::{CcrId, ExplicitMonitor, Monitor, VarTable};
use expresso_semantics::Event;
use std::collections::{BTreeMap, BTreeSet};

/// Pairwise fire-independence verdicts from the solver-discharged
/// refinement (`expresso_vcgen::refine_independence`), keyed on
/// `(CcrId, CcrId)` with the smaller id first; `true` means the pair of
/// fires was *proven* independent. The explorer takes the table as plain
/// data so the refinement stays optional and this crate stays free of any
/// solver dependency.
pub type IndependenceTable = BTreeMap<(CcrId, CcrId), bool>;

/// Static footprint of one `(CCR, fired)` transition shape.
#[derive(Debug, Default, Clone)]
struct Footprint {
    /// Shared variables read (guards passed through plus body reads).
    reads: BTreeSet<String>,
    /// Shared variables written by the body.
    writes: BTreeSet<String>,
    /// Wait queues touched: the CCR's own queue for blocking shapes, plus —
    /// for fires — every queue this transition can notify under either
    /// semantics.
    queues: BTreeSet<usize>,
    /// Fires only: this transition can insert into or remove from the
    /// notified set.
    notified_mutator: bool,
    /// Fires only: this transition's enabledness can depend on the minimum
    /// of the notified set (it may be a wake-up of a blocked thread).
    notified_sensitive: bool,
}

/// The precomputed dependence relation for one monitor. See the module docs.
///
/// Footprints are static per `(CCR, fired)` shape, so the whole relation is
/// flattened into a boolean adjacency matrix at construction time —
/// [`Dependence::dependent`] sits on the explorer's hottest path (once per
/// stack frame per executed transition, plus every sleep-set filter) and
/// must not re-walk variable sets.
#[derive(Debug)]
pub struct Dependence {
    /// Transition shapes: `2 * ccr_count` (block and fire per CCR).
    shapes: usize,
    /// Row-major `shapes x shapes` dependence matrix (refinement applied).
    matrix: Vec<bool>,
    /// The same matrix without the solver-discharged refinement. The
    /// explorer builds wakeup-sequence *contents* from this relation: the
    /// conservative footprint rules cover the enabling direction (a fire
    /// that makes another guard true shares its written variables), so a
    /// conservatively-downward-closed reordering stays executable — which
    /// the refined relation, proven only under co-enabledness, does not
    /// guarantee.
    conservative: Vec<bool>,
}

/// Matrix index of an event's shape.
fn shape(e: Event) -> usize {
    e.ccr.0 * 2 + usize::from(e.fired)
}

impl Dependence {
    /// Computes the footprints of every CCR of `monitor`, folding in the
    /// notifications of `explicit` so the relation is sound for the paired
    /// implicit/explicit system.
    ///
    /// `spurious` must be `true` when the exploration enumerates spurious
    /// wake-ups: a rule-1b re-sleep *removes* its entry from the notified
    /// set, which can shift the rule-2b minimum, so block shapes become
    /// notified-set mutators. When spurious wake-ups are not scheduled (the
    /// default), a block only ever inserts into the blocked set and the
    /// extra dependence edges would just cost reduction.
    pub fn new(
        monitor: &Monitor,
        table: &VarTable,
        explicit: &ExplicitMonitor,
        spurious: bool,
    ) -> Self {
        Dependence::with_refinement(monitor, table, explicit, spurious, None)
    }

    /// [`Dependence::new`] with a solver-discharged refinement: a fire×fire
    /// pair the table proves independent overrides every conservative rule
    /// (write conflicts, queue overlap, rule-2b minimum contention) — the
    /// proof covers exactly those interactions: the bodies commute on every
    /// shared variable and neither fire can disable the other, while the
    /// *enabling* direction stays covered by the untouched block shapes.
    /// Block events, and every pair the table does not prove, keep the
    /// conservative relation. Callers must pass `None` when spurious
    /// wake-ups are enumerated: a rule-1b re-sleep mutates the notified set
    /// in ways the static proof does not model.
    pub fn with_refinement(
        monitor: &Monitor,
        table: &VarTable,
        explicit: &ExplicitMonitor,
        spurious: bool,
        refined: Option<&IndependenceTable>,
    ) -> Self {
        let guards = monitor.guards();
        let queue_of = |guard: &expresso_monitor_lang::Expr| -> Option<usize> {
            guards.iter().position(|g| g == guard)
        };
        let shared = |vars: std::collections::HashSet<String>| -> BTreeSet<String> {
            vars.into_iter().filter(|v| table.is_shared(v)).collect()
        };
        let mut fire = Vec::with_capacity(monitor.ccrs.len());
        let mut block = Vec::with_capacity(monitor.ccrs.len());
        for ccr in monitor.all_ccrs() {
            let guard_vars = shared(ccr.guard.vars());
            let own_queue = queue_of(&ccr.guard);

            let blocking = !ccr.never_blocks();
            let mut b = Footprint {
                reads: guard_vars.clone(),
                notified_mutator: spurious && blocking,
                ..Footprint::default()
            };
            b.queues.extend(own_queue);
            block.push(b);

            let writes = shared(ccr.body.assigned_vars());
            let mut reads = shared(ccr.body.read_vars());
            reads.extend(guard_vars);
            let mut queues: BTreeSet<usize> = own_queue.into_iter().collect();
            // The implicit wake loop notifies every queue whose guard reads a
            // written variable; a conditional explicit signal re-evaluates
            // those guards too.
            for (q, g) in guards.iter().enumerate() {
                if g.vars().iter().any(|v| writes.contains(v)) {
                    queues.insert(q);
                }
            }
            for notification in explicit.notifications_for(ccr.id) {
                queues.extend(queue_of(&notification.predicate));
            }
            fire.push(Footprint {
                reads,
                writes,
                notified_mutator: blocking || !queues.is_empty(),
                notified_sensitive: blocking,
                queues,
            });
        }
        // Flatten the pairwise footprint comparison into the matrix; shape
        // index = ccr * 2 + fired (matching `shape`).
        let footprint = |s: usize| -> &Footprint {
            if s % 2 == 1 {
                &fire[s / 2]
            } else {
                &block[s / 2]
            }
        };
        let proven_independent = |a: usize, b: usize| -> bool {
            let (a_fires, b_fires) = (a % 2 == 1, b % 2 == 1);
            if !a_fires || !b_fires {
                return false;
            }
            let key = ((a / 2).min(b / 2), (a / 2).max(b / 2));
            refined
                .and_then(|t| t.get(&(CcrId(key.0), CcrId(key.1))))
                .copied()
                .unwrap_or(false)
        };
        let shapes = 2 * monitor.ccrs.len();
        let mut matrix = vec![false; shapes * shapes];
        let mut conservative = vec![false; shapes * shapes];
        for a in 0..shapes {
            for b in 0..shapes {
                let base = footprints_dependent(footprint(a), a % 2 == 1, footprint(b), b % 2 == 1);
                conservative[a * shapes + b] = base;
                matrix[a * shapes + b] = base && !proven_independent(a, b);
            }
        }
        Dependence {
            shapes,
            matrix,
            conservative,
        }
    }

    /// Whether two transitions are dependent under the (possibly refined)
    /// relation. Same-thread transitions are always dependent (program
    /// order).
    pub fn dependent(&self, a: Event, b: Event) -> bool {
        a.thread == b.thread || self.matrix[shape(a) * self.shapes + shape(b)]
    }

    /// Whether two transitions are dependent under the *unrefined*
    /// footprint rules. Identical to [`Dependence::dependent`] when no
    /// refinement table was supplied.
    pub fn dependent_conservative(&self, a: Event, b: Event) -> bool {
        a.thread == b.thread || self.conservative[shape(a) * self.shapes + shape(b)]
    }

    /// The sleep set a child configuration inherits after `executed` runs:
    /// every slept transition that is independent of it. Shared by the split
    /// phase and the DFS so the two filters cannot drift.
    ///
    /// Retention deliberately uses the *conservative* relation: keeping a
    /// slept transition asleep across `executed` asserts that the two
    /// commute from every state reached in between, and only footprint
    /// disjointness gives that unconditionally. The refined relation is
    /// proven under co-enabledness and may not hold once `executed` has
    /// moved the state, so a refined-independent pair must wake up here —
    /// otherwise a slept event can survive down a branch until it is the
    /// only enabled continuation, starving the branch into a
    /// sleep-set-blocked terminal.
    pub(crate) fn inherit_sleep(
        &self,
        sleep: &BTreeSet<Event>,
        executed: Event,
    ) -> BTreeSet<Event> {
        sleep
            .iter()
            .copied()
            .filter(|ev| !self.dependent_conservative(*ev, executed))
            .collect()
    }
}

/// Pairwise dependence of two transition shapes (thread identity excluded —
/// handled at query time).
fn footprints_dependent(fa: &Footprint, a_fires: bool, fb: &Footprint, b_fires: bool) -> bool {
    let conflict = |x: &Footprint, y: &Footprint| {
        x.writes
            .iter()
            .any(|v| y.reads.contains(v) || y.writes.contains(v))
    };
    if conflict(fa, fb) || conflict(fb, fa) {
        return true;
    }
    // Queue interactions require a fire on at least one side: two blocks
    // only insert their own entries into the blocked *set*, which commutes
    // even on one queue.
    if (a_fires || b_fires) && fa.queues.intersection(&fb.queues).next().is_some() {
        return true;
    }
    // Rule (2b) serialisation through the global minimum of N.
    (fa.notified_mutator && fb.notified_sensitive) || (fb.notified_mutator && fa.notified_sensitive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_monitor_lang::{check_monitor, parse_monitor};

    #[test]
    fn blocks_commute_and_writers_conflict() {
        let monitor = parse_monitor(
            r#"
            monitor Counter {
                int count = 0;
                atomic void release() { count++; }
                atomic void acquire() { waituntil (count > 0) { count--; } }
            }
            "#,
        )
        .unwrap();
        let table = check_monitor(&monitor).unwrap();
        let explicit = ExplicitMonitor::broadcast_all(monitor.clone());
        let dep = Dependence::new(&monitor, &table, &explicit, false);
        let release = monitor.method("release").unwrap().ccrs[0];
        let acquire = monitor.method("acquire").unwrap().ccrs[0];
        let block = |t: usize| Event {
            thread: t,
            ccr: acquire,
            fired: false,
        };
        let fire = |t: usize, ccr| Event {
            thread: t,
            ccr,
            fired: true,
        };
        // Two different threads blocking on the same queue commute.
        assert!(!dep.dependent(block(0), block(1)));
        // A release writes `count`, which every acquire guard reads.
        assert!(dep.dependent(fire(0, release), block(1)));
        assert!(dep.dependent(fire(0, release), fire(1, release)));
        // Same-thread transitions are always dependent.
        assert!(dep.dependent(block(0), fire(0, acquire)));
        // Blocking fires serialise through the notified-set minimum.
        assert!(dep.dependent(fire(0, acquire), fire(1, acquire)));
    }

    #[test]
    fn refinement_overrides_fire_pairs_but_never_blocks() {
        let monitor = parse_monitor(
            r#"
            monitor Counter {
                int count = 0;
                atomic void release() { count++; }
                atomic void acquire() { waituntil (count > 0) { count--; } }
            }
            "#,
        )
        .unwrap();
        let table = check_monitor(&monitor).unwrap();
        let explicit = ExplicitMonitor::broadcast_all(monitor.clone());
        let release = monitor.method("release").unwrap().ccrs[0];
        let acquire = monitor.method("acquire").unwrap().ccrs[0];
        // A (hand-built) proof that release commutes with everything while
        // acquire can disable a sibling acquire.
        let mut refined = IndependenceTable::new();
        refined.insert((release, release), true);
        refined.insert((release, acquire), true);
        refined.insert((acquire, acquire), false);
        let dep = Dependence::with_refinement(&monitor, &table, &explicit, false, Some(&refined));
        let fire = |t: usize, ccr| Event {
            thread: t,
            ccr,
            fired: true,
        };
        let block = |t: usize| Event {
            thread: t,
            ccr: acquire,
            fired: false,
        };
        // Proven fire pairs drop every conservative edge …
        assert!(!dep.dependent(fire(0, release), fire(1, release)));
        assert!(!dep.dependent(fire(0, release), fire(1, acquire)));
        // … unproven fire pairs and every block shape keep them.
        assert!(dep.dependent(fire(0, acquire), fire(1, acquire)));
        assert!(dep.dependent(fire(0, release), block(1)));
        // Same-thread program order is untouchable.
        assert!(dep.dependent(fire(0, release), fire(0, acquire)));
    }

    #[test]
    fn disjoint_non_blocking_updates_are_independent() {
        let monitor = parse_monitor(
            r#"
            monitor Split {
                int a = 0;
                int b = 0;
                atomic void bumpA() { a++; }
                atomic void bumpB() { b++; }
                atomic void waitA() { waituntil (a > 0) { a--; } }
            }
            "#,
        )
        .unwrap();
        let table = check_monitor(&monitor).unwrap();
        let explicit = ExplicitMonitor::without_signals(monitor.clone());
        let dep = Dependence::new(&monitor, &table, &explicit, false);
        let bump_a = monitor.method("bumpA").unwrap().ccrs[0];
        let bump_b = monitor.method("bumpB").unwrap().ccrs[0];
        let a0 = Event {
            thread: 0,
            ccr: bump_a,
            fired: true,
        };
        let b1 = Event {
            thread: 1,
            ccr: bump_b,
            fired: true,
        };
        // bumpB touches no guard variable and no queue.
        assert!(!dep.dependent(a0, b1));
        // bumpA notifies waitA's queue, so it is a notified-set mutator, but
        // bumpB is not notified-sensitive — still independent.
        assert!(!dep.dependent(b1, a0));
    }
}

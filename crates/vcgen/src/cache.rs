//! Memoization of weakest-precondition results.
//!
//! Signal placement and the invariant fixpoint recompute `wp(body, post)` for
//! the same `(CCR body, postcondition)` pair over and over: every fixpoint
//! round re-proves consecution for each surviving candidate, the §4.3
//! commutativity improvement asks for the same sequential compositions under
//! both orders, and the `while` havoc path rebuilds an identical quantified
//! exit condition each time. [`WpCache`] memoizes the interned result keyed
//! on `(body, post-id)`; `wp` is a pure function of that pair (fresh-name
//! generation depends only on the formulas involved), so a hit is always the
//! exact id a recomputation would produce.
//!
//! The table is hash-striped like the solver's memo caches so parallel
//! placement workers do not serialize on a single mutex, and statistics are
//! relaxed atomics. One cache is only ever valid for one monitor's symbol
//! table **and one formula arena** — keys embed table-dependent lowering and
//! the cached [`FormulaId`]s are only meaningful in the arena that minted
//! them. The pipeline therefore creates a fresh cache per analysis and
//! shares it between abduction and placement of that monitor (which run
//! against the same solver, hence the same arena).

use crate::wp::WpError;
use expresso_logic::FormulaId;
use expresso_monitor_lang::Stmt;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const WP_CACHE_SHARDS: usize = 16;

/// One stripe of the cache: statement → (post-id → memoized wp).
type WpShard = HashMap<Stmt, HashMap<FormulaId, Result<FormulaId, WpError>>>;

/// Hit/miss counters of one [`WpCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WpCacheStats {
    /// `wp` computations answered from the cache.
    pub hits: usize,
    /// `wp` computations that had to run and were then cached.
    pub misses: usize,
}

impl WpCacheStats {
    /// Fraction of lookups answered from the cache (0.0 with no traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A striped `(body, post-id) → wp` memo table. See the module documentation.
#[derive(Debug)]
pub struct WpCache {
    enabled: bool,
    /// Outer key: the statement (cloned once on first insert); inner key: the
    /// interned postcondition. The two-level shape lets lookups borrow the
    /// caller's `&Stmt` instead of cloning it per query.
    shards: Box<[Mutex<WpShard>]>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for WpCache {
    fn default() -> Self {
        WpCache::new(true)
    }
}

impl WpCache {
    /// Creates a cache; `enabled = false` yields a pass-through that always
    /// recomputes (the differential baseline the equivalence tests use).
    pub fn new(enabled: bool) -> Self {
        WpCache {
            enabled,
            shards: (0..WP_CACHE_SHARDS)
                .map(|_| Mutex::default())
                .collect::<Vec<_>>()
                .into(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Whether lookups are served (as opposed to pass-through recomputation).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> WpCacheStats {
        WpCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, stmt: &Stmt) -> &Mutex<WpShard> {
        let mut hasher = DefaultHasher::new();
        stmt.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % self.shards.len()]
    }

    /// Returns the memoized `wp(stmt, post)`, computing and recording it on a
    /// miss. The computation runs outside the stripe lock; a racing duplicate
    /// computes the same pure result, so last-write-wins is harmless.
    pub fn get_or_compute(
        &self,
        stmt: &Stmt,
        post: FormulaId,
        compute: impl FnOnce() -> Result<FormulaId, WpError>,
    ) -> Result<FormulaId, WpError> {
        if !self.enabled {
            return compute();
        }
        if let Some(cached) = self
            .shard(stmt)
            .lock()
            .unwrap()
            .get(stmt)
            .and_then(|by_post| by_post.get(&post))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        let result = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.shard(stmt)
            .lock()
            .unwrap()
            .entry(stmt.clone())
            .or_default()
            .insert(post, result.clone());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_logic::Interner;

    fn skip() -> Stmt {
        Stmt::Skip
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let interner = Interner::new();
        let post = interner.true_id();
        let cache = WpCache::new(true);
        let mut computed = 0;
        for _ in 0..3 {
            let got = cache.get_or_compute(&skip(), post, || {
                computed += 1;
                Ok(post)
            });
            assert_eq!(got, Ok(post));
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn disabled_cache_recomputes_every_time() {
        let interner = Interner::new();
        let post = interner.true_id();
        let cache = WpCache::new(false);
        let mut computed = 0;
        for _ in 0..3 {
            let _ = cache.get_or_compute(&skip(), post, || {
                computed += 1;
                Ok(post)
            });
        }
        assert_eq!(computed, 3);
        assert_eq!(cache.stats(), WpCacheStats::default());
    }

    #[test]
    fn errors_are_cached_too() {
        let interner = Interner::new();
        let post = interner.false_id();
        let cache = WpCache::new(true);
        let mut computed = 0;
        for _ in 0..2 {
            let got = cache.get_or_compute(&skip(), post, || {
                computed += 1;
                Err(WpError::ArrayWrite("buf".into()))
            });
            assert_eq!(got, Err(WpError::ArrayWrite("buf".into())));
        }
        assert_eq!(computed, 1);
    }

    #[test]
    fn distinct_posts_are_distinct_entries() {
        let interner = Interner::new();
        let cache = WpCache::new(true);
        let t = interner.true_id();
        let f = interner.false_id();
        assert_eq!(cache.get_or_compute(&skip(), t, || Ok(t)), Ok(t));
        assert_eq!(cache.get_or_compute(&skip(), f, || Ok(f)), Ok(f));
        assert_eq!(cache.stats().misses, 2);
    }
}

//! Memoization of weakest-precondition results, shared across a whole suite.
//!
//! Signal placement and the invariant fixpoint recompute `wp(body, post)` for
//! the same `(CCR body, postcondition)` pair over and over: every fixpoint
//! round re-proves consecution for each surviving candidate, the §4.3
//! commutativity improvement asks for the same sequential compositions under
//! both orders, and the `while` havoc path rebuilds an identical quantified
//! exit condition each time. The same recomputation also happens *across*
//! monitors: structurally identical CCR bodies (`readers++`,
//! `if (readers > 0) readers--`) recur throughout a benchmark suite.
//!
//! Two layers implement the memo:
//!
//! * [`WpStore`] is the suite-wide table. Entries are keyed on
//!   `(lowering fingerprint, body, post-id)`, where the **fingerprint** is
//!   the slice of the symbol table that `wp` actually consults for that
//!   statement — the sorted `(variable, type)` pairs of every variable the
//!   statement reads or writes, used verbatim as the key (hashing happens
//!   only for shard selection, so distinct slices can never alias). `wp` is a pure function of that triple (fresh-name generation
//!   depends only on the formulas involved, and lowering consults nothing
//!   but variable types), so a hit is always the exact id a recomputation
//!   would produce — even when the hit was inserted by a *different*
//!   monitor's analysis. Restricting the fingerprint to the statement's own
//!   variables (instead of hashing the whole table) is what makes that
//!   cross-monitor reuse possible: two monitors rarely share a whole symbol
//!   table, but they frequently share a counter update.
//! * [`WpCache`] is a per-analysis **session** over a store: it carries the
//!   analysis id used to attribute cross-monitor reuse and its own exact
//!   hit/miss counters, which stay meaningful even when many analyses run
//!   concurrently against one store on the work-stealing pool.
//!
//! The store is hash-striped like the solver's memo caches so parallel
//! placement workers do not serialize on a single mutex, and statistics are
//! relaxed atomics. One store is only ever valid for **one formula arena**:
//! the cached [`FormulaId`]s are only meaningful in the arena that minted
//! them. `SharedAnalysisContext` therefore owns one store next to its arena
//! and hands a fresh session to every analysis.

use crate::wp::WpError;
use expresso_logic::FormulaId;
use expresso_monitor_lang::{Stmt, Type, VarTable};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const WP_CACHE_SHARDS: usize = 16;

/// The session id recorded on entries seeded from a persisted artifact of an
/// earlier process ([`WpStore::seed_entries`]). Real sessions count up from
/// 0, so the marker never collides in practice; a hit on a disk-seeded entry
/// is therefore always attributed as cross-monitor *and* counted into
/// [`WpCacheStats::disk_hits`].
const DISK_SESSION: u32 = u32::MAX;

/// A memoized result plus the id of the analysis session that inserted it
/// (which funds the cross-monitor reuse accounting).
type WpEntry = (Result<FormulaId, WpError>, u32);

/// One exported store entry, in the process-independent key shape the
/// persistence layer serializes: `(fingerprint, statement, post-id, result)`.
/// The two [`FormulaId`]s are only meaningful in the arena the store was
/// filled against; `expresso-persist` swaps them for formula trees on disk.
pub type WpExportEntry = (
    LoweringFingerprint,
    Stmt,
    FormulaId,
    Result<FormulaId, WpError>,
);

/// One stripe of the store: lowering fingerprint → statement → (post-id →
/// entry). The statement level lets lookups borrow the caller's `&Stmt`
/// instead of cloning it per query; the clone happens once, on first insert.
type WpShard = HashMap<LoweringFingerprint, HashMap<Stmt, HashMap<FormulaId, WpEntry>>>;

/// The exact slice of a symbol table that `wp(stmt, _)` consults: the sorted
/// `(variable, type)` pairs of every variable the statement reads or writes
/// (guard expressions included). This is used *verbatim* as a cache-key
/// component — not merely hashed — so two different table slices can never
/// alias a store entry; hashing happens only for shard selection. Cheap to
/// clone (it is an `Arc`), which is what lets [`VcGen`](crate::VcGen)
/// memoize it per statement.
///
/// Two statements with equal ASTs and equal fingerprints have identical
/// `wp` results for every postcondition, regardless of which monitor they
/// came from — the soundness condition for sharing one [`WpStore`] across a
/// suite.
pub type LoweringFingerprint = Arc<[(String, Option<Type>)]>;

/// Computes the [`LoweringFingerprint`] of `stmt` against `table`.
pub fn lowering_fingerprint(stmt: &Stmt, table: &VarTable) -> LoweringFingerprint {
    let mut vars: Vec<String> = stmt.assigned_vars().into_iter().collect();
    for v in stmt.read_vars() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.sort_unstable();
    vars.into_iter()
        .map(|v| {
            let ty = table.ty(&v);
            (v, ty)
        })
        .collect()
}

/// Hit/miss counters of one [`WpCache`] session (or, via
/// [`WpStore::stats`], of a whole store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WpCacheStats {
    /// `wp` computations answered from the cache.
    pub hits: usize,
    /// `wp` computations that had to run and were then cached.
    pub misses: usize,
    /// Hits served by an entry inserted by a *different* analysis session —
    /// the cross-monitor reuse a suite-wide store buys. Always 0 for a
    /// private per-analysis store.
    pub cross_monitor_hits: usize,
    /// Hits served by an entry seeded from a persisted artifact of an earlier
    /// process ([`WpStore::seed_entries`]) — the warm-start reuse
    /// `expresso-persist` buys. Disk hits are also counted as cross-monitor
    /// hits (the inserting "session" is never the current one), so this is a
    /// refinement of `cross_monitor_hits`, not a separate population. Always
    /// 0 for a cold-started store.
    pub disk_hits: usize,
}

impl WpCacheStats {
    /// Fraction of lookups answered from the cache (0.0 with no traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adapt into a metric group for [`expresso_obs::MetricsRegistry`].
    pub fn metrics(&self) -> Vec<expresso_obs::Metric> {
        use expresso_obs::Metric;
        vec![
            Metric::counter("hits", self.hits as u64),
            Metric::counter("misses", self.misses as u64),
            Metric::counter("cross_monitor_hits", self.cross_monitor_hits as u64),
            Metric::counter("disk_hits", self.disk_hits as u64),
            Metric::gauge("hit_rate", self.hit_rate()),
        ]
    }
}

#[derive(Debug, Default)]
struct WpCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    cross_monitor_hits: AtomicUsize,
    disk_hits: AtomicUsize,
}

impl WpCounters {
    fn snapshot(&self) -> WpCacheStats {
        WpCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            cross_monitor_hits: self.cross_monitor_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    fn record(&self, hit: bool, cross: bool, disk: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if cross {
                self.cross_monitor_hits.fetch_add(1, Ordering::Relaxed);
            }
            if disk {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The suite-wide striped `(fingerprint, body, post-id) → wp` memo table.
/// See the module documentation.
#[derive(Debug)]
pub struct WpStore {
    enabled: bool,
    shards: Box<[Mutex<WpShard>]>,
    counters: WpCounters,
    next_session: AtomicU32,
}

impl Default for WpStore {
    fn default() -> Self {
        WpStore::new(true)
    }
}

impl WpStore {
    /// Creates a store; `enabled = false` yields a pass-through that always
    /// recomputes (the differential baseline the equivalence tests use).
    pub fn new(enabled: bool) -> Self {
        WpStore {
            enabled,
            shards: (0..WP_CACHE_SHARDS)
                .map(|_| Mutex::default())
                .collect::<Vec<_>>()
                .into(),
            counters: WpCounters::default(),
            next_session: AtomicU32::new(0),
        }
    }

    /// Whether lookups are served (as opposed to pass-through recomputation).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a per-analysis session. Sessions share the store's entries but
    /// carry their own exact counters and a fresh analysis id for the
    /// cross-monitor attribution.
    pub fn session(self: &Arc<Self>) -> Arc<WpCache> {
        let analysis = self.next_session.fetch_add(1, Ordering::Relaxed);
        Arc::new(WpCache {
            store: Arc::clone(self),
            analysis,
            counters: WpCounters::default(),
        })
    }

    /// Store-wide counters, cumulative across every session.
    pub fn stats(&self) -> WpCacheStats {
        self.counters.snapshot()
    }

    fn shard(&self, fingerprint: &LoweringFingerprint, stmt: &Stmt) -> &Mutex<WpShard> {
        // DefaultHasher::new() is deterministic within a process, matching
        // the shard selectors of every other memo table in the workspace.
        let mut hasher = DefaultHasher::new();
        fingerprint.hash(&mut hasher);
        stmt.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % self.shards.len()]
    }

    fn lookup(
        &self,
        fingerprint: &LoweringFingerprint,
        stmt: &Stmt,
        post: FormulaId,
    ) -> Option<WpEntry> {
        self.shard(fingerprint, stmt)
            .lock()
            .unwrap()
            .get(fingerprint)
            .and_then(|by_stmt| by_stmt.get(stmt))
            .and_then(|by_post| by_post.get(&post))
            .cloned()
    }

    fn insert(
        &self,
        fingerprint: &LoweringFingerprint,
        stmt: &Stmt,
        post: FormulaId,
        entry: WpEntry,
    ) {
        self.shard(fingerprint, stmt)
            .lock()
            .unwrap()
            .entry(Arc::clone(fingerprint))
            .or_default()
            .entry(stmt.clone())
            .or_default()
            .insert(post, entry);
    }

    // ------------------------------------------------------------------
    // Persistence hooks (`expresso-persist`)
    // ------------------------------------------------------------------

    /// Snapshot of every memoized entry (whoever inserted it), in shard
    /// order, for serialization by the persistence layer. Callers wanting a
    /// deterministic artifact sort the result themselves.
    pub fn export_entries(&self) -> Vec<WpExportEntry> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap();
            for (fingerprint, by_stmt) in shard.iter() {
                for (stmt, by_post) in by_stmt {
                    for (&post, (result, _session)) in by_post {
                        out.push((Arc::clone(fingerprint), stmt.clone(), post, result.clone()));
                    }
                }
            }
        }
        out
    }

    /// Seeds the store with entries re-interned from a persisted artifact,
    /// marked with the reserved disk session id so hits on them count as
    /// cross-monitor reuse *and* into [`WpCacheStats::disk_hits`]. Existing
    /// entries win over seeded ones. Returns the number of entries inserted;
    /// no-op (returning 0) when the store is disabled.
    pub fn seed_entries(&self, entries: Vec<WpExportEntry>) -> usize {
        if !self.enabled {
            return 0;
        }
        let mut inserted = 0;
        for (fingerprint, stmt, post, result) in entries {
            let mut shard = self.shard(&fingerprint, &stmt).lock().unwrap();
            let by_post = shard
                .entry(fingerprint)
                .or_default()
                .entry(stmt)
                .or_default();
            if by_post.contains_key(&post) {
                continue;
            }
            by_post.insert(post, (result, DISK_SESSION));
            inserted += 1;
        }
        inserted
    }

    /// Total number of memoized entries currently in the store.
    pub fn entry_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .unwrap()
                    .values()
                    .flat_map(|by_stmt| by_stmt.values())
                    .map(|by_post| by_post.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// A per-analysis session over a [`WpStore`]; this is the handle the
/// pipeline threads through abduction and placement. See the module
/// documentation.
#[derive(Debug)]
pub struct WpCache {
    store: Arc<WpStore>,
    analysis: u32,
    counters: WpCounters,
}

impl Default for WpCache {
    fn default() -> Self {
        WpCache::new(true)
    }
}

impl WpCache {
    /// Creates a session over a fresh private store — the configuration of a
    /// standalone (non-suite) analysis. `enabled = false` yields the
    /// recompute-everything differential baseline.
    pub fn new(enabled: bool) -> Self {
        WpCache {
            store: Arc::new(WpStore::new(enabled)),
            analysis: 0,
            counters: WpCounters::default(),
        }
    }

    /// Whether lookups are served (as opposed to pass-through recomputation).
    pub fn is_enabled(&self) -> bool {
        self.store.enabled
    }

    /// Snapshot of this session's counters (exact even when other sessions
    /// hammer the same store concurrently).
    pub fn stats(&self) -> WpCacheStats {
        self.counters.snapshot()
    }

    /// The store this session reads and writes.
    pub fn store(&self) -> &Arc<WpStore> {
        &self.store
    }

    /// Returns the memoized `wp(stmt, post)` under `stmt`'s lowering
    /// fingerprint for `table`, computing and recording it on a miss. The
    /// computation runs outside the stripe lock; a racing duplicate computes
    /// the same pure result, so last-write-wins is harmless.
    pub fn get_or_compute(
        &self,
        stmt: &Stmt,
        table: &VarTable,
        post: FormulaId,
        compute: impl FnOnce() -> Result<FormulaId, WpError>,
    ) -> Result<FormulaId, WpError> {
        if !self.store.enabled {
            let _span = expresso_obs::span!("vcgen.wp");
            return compute();
        }
        self.get_or_compute_fingerprinted(&lowering_fingerprint(stmt, table), stmt, post, compute)
    }

    /// [`WpCache::get_or_compute`] with a precomputed fingerprint — the hot
    /// path for callers that memoize the fingerprint per statement (the
    /// fingerprint of a given `(stmt, table)` pair never changes, and a
    /// `VcGen` is bound to one table for its whole life).
    pub fn get_or_compute_fingerprinted(
        &self,
        fingerprint: &LoweringFingerprint,
        stmt: &Stmt,
        post: FormulaId,
        compute: impl FnOnce() -> Result<FormulaId, WpError>,
    ) -> Result<FormulaId, WpError> {
        if !self.store.enabled {
            let _span = expresso_obs::span!("vcgen.wp");
            return compute();
        }
        if let Some((cached, inserted_by)) = self.store.lookup(fingerprint, stmt, post) {
            let cross = inserted_by != self.analysis;
            let disk = inserted_by == DISK_SESSION;
            self.counters.record(true, cross, disk);
            self.store.counters.record(true, cross, disk);
            return cached;
        }
        let result = {
            let _span = expresso_obs::span!("vcgen.wp");
            compute()
        };
        self.counters.record(false, false, false);
        self.store.counters.record(false, false, false);
        self.store
            .insert(fingerprint, stmt, post, (result.clone(), self.analysis));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_logic::Interner;
    use expresso_monitor_lang::{check_monitor, parse_monitor};

    fn skip() -> Stmt {
        Stmt::Skip
    }

    fn table() -> VarTable {
        let monitor = parse_monitor(
            "monitor M { int count = 0; bool stopped = false; atomic void nop() { skip; } }",
        )
        .unwrap();
        check_monitor(&monitor).unwrap()
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let interner = Interner::new();
        let post = interner.true_id();
        let table = table();
        let cache = WpCache::new(true);
        let mut computed = 0;
        for _ in 0..3 {
            let got = cache.get_or_compute(&skip(), &table, post, || {
                computed += 1;
                Ok(post)
            });
            assert_eq!(got, Ok(post));
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.cross_monitor_hits, 0);
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn disabled_cache_recomputes_every_time() {
        let interner = Interner::new();
        let post = interner.true_id();
        let table = table();
        let cache = WpCache::new(false);
        let mut computed = 0;
        for _ in 0..3 {
            let _ = cache.get_or_compute(&skip(), &table, post, || {
                computed += 1;
                Ok(post)
            });
        }
        assert_eq!(computed, 3);
        assert_eq!(cache.stats(), WpCacheStats::default());
    }

    #[test]
    fn errors_are_cached_too() {
        let interner = Interner::new();
        let post = interner.false_id();
        let table = table();
        let cache = WpCache::new(true);
        let mut computed = 0;
        for _ in 0..2 {
            let got = cache.get_or_compute(&skip(), &table, post, || {
                computed += 1;
                Err(WpError::ArrayWrite("buf".into()))
            });
            assert_eq!(got, Err(WpError::ArrayWrite("buf".into())));
        }
        assert_eq!(computed, 1);
    }

    #[test]
    fn distinct_posts_are_distinct_entries() {
        let interner = Interner::new();
        let cache = WpCache::new(true);
        let table = table();
        let t = interner.true_id();
        let f = interner.false_id();
        assert_eq!(cache.get_or_compute(&skip(), &table, t, || Ok(t)), Ok(t));
        assert_eq!(cache.get_or_compute(&skip(), &table, f, || Ok(f)), Ok(f));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn fingerprint_separates_conflicting_tables() {
        // The same statement AST lowers differently when the assigned
        // variable changes type; the fingerprint must keep the entries apart.
        let int_table = check_monitor(
            &parse_monitor("monitor A { int x = 0; atomic void nop() { skip; } }").unwrap(),
        )
        .unwrap();
        let bool_table = check_monitor(
            &parse_monitor("monitor B { bool x = false; atomic void nop() { skip; } }").unwrap(),
        )
        .unwrap();
        let stmt = Stmt::Assign("x".into(), expresso_monitor_lang::parse_expr("x").unwrap());
        assert_ne!(
            lowering_fingerprint(&stmt, &int_table),
            lowering_fingerprint(&stmt, &bool_table)
        );

        let interner = Interner::new();
        let post = interner.true_id();
        let store = Arc::new(WpStore::new(true));
        let a = store.session();
        let b = store.session();
        let one = interner.intern(&expresso_logic::Formula::bool_var("one"));
        let two = interner.intern(&expresso_logic::Formula::bool_var("two"));
        assert_eq!(
            a.get_or_compute(&stmt, &int_table, post, || Ok(one)),
            Ok(one)
        );
        // Same statement, conflicting table: must not see A's entry.
        assert_eq!(
            b.get_or_compute(&stmt, &bool_table, post, || Ok(two)),
            Ok(two)
        );
        assert_eq!(store.stats().hits, 0);
        assert_eq!(store.stats().misses, 2);
    }

    #[test]
    fn cross_monitor_hits_are_attributed_to_sessions() {
        // Two monitors sharing a structurally identical statement over
        // identically typed variables share one store entry; the second
        // session's hit is counted as cross-monitor.
        let table_a = check_monitor(
            &parse_monitor("monitor A { int readers = 0; atomic void nop() { skip; } }").unwrap(),
        )
        .unwrap();
        let table_b = check_monitor(
            &parse_monitor(
                "monitor B { int readers = 0; bool extra = false; atomic void nop() { skip; } }",
            )
            .unwrap(),
        )
        .unwrap();
        let stmt = Stmt::Assign(
            "readers".into(),
            expresso_monitor_lang::parse_expr("readers + 1").unwrap(),
        );
        assert_eq!(
            lowering_fingerprint(&stmt, &table_a),
            lowering_fingerprint(&stmt, &table_b)
        );

        let interner = Interner::new();
        let post = interner.true_id();
        let store = Arc::new(WpStore::new(true));
        let a = store.session();
        let b = store.session();
        let value = interner.intern(&expresso_logic::Formula::bool_var("wp"));
        assert_eq!(
            a.get_or_compute(&stmt, &table_a, post, || Ok(value)),
            Ok(value)
        );
        assert_eq!(
            b.get_or_compute(&stmt, &table_b, post, || {
                panic!("must be served from A's entry")
            }),
            Ok(value)
        );
        assert_eq!(a.stats().cross_monitor_hits, 0);
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().cross_monitor_hits, 1);
        let store_stats = store.stats();
        assert_eq!(store_stats.hits, 1);
        assert_eq!(store_stats.cross_monitor_hits, 1);
        assert_eq!(store_stats.misses, 1);
    }
}

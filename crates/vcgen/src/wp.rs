//! Weakest preconditions for the monitor statement language.
//!
//! Two entry points are provided: the original tree-based [`wp`] and the
//! arena-based [`wp_id`], which builds the precondition directly as interned
//! [`FormulaId`]s. The id path is what the signal-placement pipeline uses: it
//! never clones subtrees, and repeated substitution over shared subtrees is
//! memoized inside the [`Interner`].

use expresso_logic::{fresh_name, Formula, FormulaId, Interner, Subst, Term};
use expresso_monitor_lang::{expr_to_formula, expr_to_term, LowerError, Stmt, VarTable};
use std::collections::HashSet;
use std::fmt;

/// Errors produced while computing a weakest precondition.
///
/// Every error is treated conservatively by callers: a triple whose `wp`
/// cannot be computed is simply "not proven", which at worst costs an extra
/// signal, never correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WpError {
    /// The statement writes an array that the postcondition reads; array
    /// writes are modelled as havoc, so nothing can be concluded.
    ArrayWrite(String),
    /// The postcondition or an expression could not be lowered to the logical
    /// fragment.
    Lower(LowerError),
}

impl fmt::Display for WpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WpError::ArrayWrite(a) => {
                write!(
                    f,
                    "array `{a}` is written and mentioned by the postcondition"
                )
            }
            WpError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WpError {}

impl From<LowerError> for WpError {
    fn from(e: LowerError) -> Self {
        WpError::Lower(e)
    }
}

/// Computes the weakest precondition `wp(stmt, post)`.
///
/// The rules are standard for assignments, sequencing and conditionals.
/// Loops use a sound over-approximation: the variables assigned by the body
/// are havocked and the postcondition must hold in every havocked state that
/// exits the loop (`∀ fresh. ¬cond[fresh] ⇒ post[fresh]`). Array writes
/// havoc the whole array: if the postcondition reads the written array the
/// computation is rejected (conservative), otherwise the write is a no-op on
/// the postcondition.
///
/// # Errors
///
/// Returns a [`WpError`] when the postcondition depends on a written array or
/// when lowering an expression fails (non-linear arithmetic, sort errors).
pub fn wp(stmt: &Stmt, post: &Formula, table: &VarTable) -> Result<Formula, WpError> {
    match stmt {
        Stmt::Skip => Ok(post.clone()),
        Stmt::Seq(parts) => {
            let mut current = post.clone();
            for s in parts.iter().rev() {
                current = wp(s, &current, table)?;
            }
            Ok(current)
        }
        Stmt::Assign(name, value) | Stmt::Local(name, _, value) => {
            let mut subst = Subst::new();
            if table.is_bool(name) {
                subst.boolean(name.clone(), expr_to_formula(value, table)?);
            } else {
                subst.int(name.clone(), expr_to_term(value, table)?);
            }
            Ok(subst.apply(post))
        }
        Stmt::ArrayAssign(array, _, _) => {
            if post.arrays().contains(array) {
                Err(WpError::ArrayWrite(array.clone()))
            } else {
                Ok(post.clone())
            }
        }
        Stmt::If(cond, then_branch, else_branch) => {
            let cond = expr_to_formula(cond, table)?;
            let wp_then = wp(then_branch, post, table)?;
            let wp_else = wp(else_branch, post, table)?;
            Ok(Formula::and(vec![
                Formula::implies(cond.clone(), wp_then),
                Formula::implies(Formula::not(cond), wp_else),
            ]))
        }
        Stmt::While(cond, body) => {
            let cond_formula = expr_to_formula(cond, table)?;
            // Havoc every scalar assigned in the body; arrays force rejection
            // when the postcondition depends on them.
            let assigned = body.assigned_vars();
            for a in &assigned {
                if table.is_array(a) && post.arrays().contains(a) {
                    return Err(WpError::ArrayWrite(a.clone()));
                }
            }
            let scalars: Vec<String> = {
                let mut v: Vec<String> = assigned
                    .iter()
                    .filter(|a| !table.is_array(a))
                    .cloned()
                    .collect();
                v.sort();
                v
            };
            let mut taken: HashSet<String> = post.free_vars();
            taken.extend(cond_formula.free_vars());
            taken.extend(scalars.iter().cloned());
            let mut subst = Subst::new();
            let mut fresh_int_binders = Vec::new();
            let mut bool_pairs: Vec<(String, String)> = Vec::new();
            for v in &scalars {
                let fresh = fresh_name(&format!("{v}!loop"), &taken);
                taken.insert(fresh.clone());
                if table.is_bool(v) {
                    subst.boolean(v.clone(), Formula::bool_var(fresh.clone()));
                    bool_pairs.push((v.clone(), fresh));
                } else {
                    subst.int(v.clone(), Term::var(fresh.clone()));
                    fresh_int_binders.push(fresh);
                }
            }
            let exit =
                Formula::implies(Formula::not(subst.apply(&cond_formula)), subst.apply(post));
            // Universally quantify the havocked integers; booleans are expanded
            // by cases because the quantifier layer is integer-only.
            let mut quantified = exit;
            for (_, fresh) in &bool_pairs {
                let mut true_case = Subst::new();
                true_case.boolean(fresh.clone(), Formula::True);
                let mut false_case = Subst::new();
                false_case.boolean(fresh.clone(), Formula::False);
                quantified = Formula::and(vec![
                    true_case.apply(&quantified),
                    false_case.apply(&quantified),
                ]);
            }
            Ok(Formula::forall(fresh_int_binders, quantified))
        }
    }
}

/// Computes the weakest precondition `wp(stmt, post)` over interned formulas.
///
/// Mirrors [`wp`] rule for rule, but builds the result as ids in `interner`:
/// no subtree is ever cloned, and assignments substitute through shared
/// subtrees at most once per distinct node.
///
/// # Errors
///
/// Same conditions as [`wp`].
pub fn wp_id(
    stmt: &Stmt,
    post: FormulaId,
    table: &VarTable,
    interner: &Interner,
) -> Result<FormulaId, WpError> {
    match stmt {
        Stmt::Skip => Ok(post),
        Stmt::Seq(parts) => {
            let mut current = post;
            for s in parts.iter().rev() {
                current = wp_id(s, current, table, interner)?;
            }
            Ok(current)
        }
        Stmt::Assign(name, value) | Stmt::Local(name, _, value) => {
            let mut subst = Subst::new();
            if table.is_bool(name) {
                subst.boolean(name.clone(), expr_to_formula(value, table)?);
            } else {
                subst.int(name.clone(), expr_to_term(value, table)?);
            }
            Ok(interner.apply_subst(&subst, post))
        }
        Stmt::ArrayAssign(array, _, _) => {
            if interner.arrays(post).contains(array) {
                Err(WpError::ArrayWrite(array.clone()))
            } else {
                Ok(post)
            }
        }
        Stmt::If(cond, then_branch, else_branch) => {
            let cond = interner.intern(&expr_to_formula(cond, table)?);
            let wp_then = wp_id(then_branch, post, table, interner)?;
            let wp_else = wp_id(else_branch, post, table, interner)?;
            let pos_case = interner.mk_implies(cond, wp_then);
            let neg_case = interner.mk_implies(interner.mk_not(cond), wp_else);
            Ok(interner.mk_and(vec![pos_case, neg_case]))
        }
        Stmt::While(cond, body) => {
            let cond_formula = expr_to_formula(cond, table)?;
            let post_arrays = interner.arrays(post);
            let assigned = body.assigned_vars();
            for a in &assigned {
                if table.is_array(a) && post_arrays.contains(a) {
                    return Err(WpError::ArrayWrite(a.clone()));
                }
            }
            let scalars: Vec<String> = {
                let mut v: Vec<String> = assigned
                    .iter()
                    .filter(|a| !table.is_array(a))
                    .cloned()
                    .collect();
                v.sort();
                v
            };
            let mut taken: HashSet<String> = interner.free_vars(post);
            taken.extend(cond_formula.free_vars());
            taken.extend(scalars.iter().cloned());
            let mut subst = Subst::new();
            let mut fresh_int_binders = Vec::new();
            let mut bool_pairs: Vec<(String, String)> = Vec::new();
            for v in &scalars {
                let fresh = fresh_name(&format!("{v}!loop"), &taken);
                taken.insert(fresh.clone());
                if table.is_bool(v) {
                    subst.boolean(v.clone(), Formula::bool_var(fresh.clone()));
                    bool_pairs.push((v.clone(), fresh));
                } else {
                    subst.int(v.clone(), Term::var(fresh.clone()));
                    fresh_int_binders.push(fresh);
                }
            }
            let cond_id = interner.intern(&cond_formula);
            let havocked_cond = interner.apply_subst(&subst, cond_id);
            let exit = interner.mk_implies(
                interner.mk_not(havocked_cond),
                interner.apply_subst(&subst, post),
            );
            // Universally quantify the havocked integers; booleans are expanded
            // by cases because the quantifier layer is integer-only.
            let mut quantified = exit;
            for (_, fresh) in &bool_pairs {
                let mut true_case = Subst::new();
                true_case.boolean(fresh.clone(), Formula::True);
                let mut false_case = Subst::new();
                false_case.boolean(fresh.clone(), Formula::False);
                quantified = interner.mk_and(vec![
                    interner.apply_subst(&true_case, quantified),
                    interner.apply_subst(&false_case, quantified),
                ]);
            }
            Ok(interner.mk_forall(fresh_int_binders, quantified))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_logic::Term;
    use expresso_monitor_lang::{check_monitor, parse_monitor, Monitor, VarTable};

    fn fixture() -> (Monitor, VarTable) {
        let m = parse_monitor(
            r#"
            monitor M(int capacity) {
                int count = 0;
                bool stopped = false;
                int[] buf = new int[capacity];
                atomic void add(int item) {
                    waituntil (count < capacity) {
                        buf[count] = item;
                        count++;
                    }
                }
                atomic void drain() {
                    while (count > 0) { count--; }
                }
                atomic void toggle() {
                    if (stopped) { stopped = false; } else { stopped = true; }
                }
            }
            "#,
        )
        .unwrap();
        let t = check_monitor(&m).unwrap();
        (m, t)
    }

    #[test]
    fn assignment_substitutes() {
        let (m, t) = fixture();
        let add = m.method("add").unwrap();
        let body = &m.ccr(add.ccrs[0]).body;
        // post: count <= capacity
        let post = Term::var("count").le(Term::var("capacity"));
        let pre = wp(body, &post, &t).unwrap();
        // wp should be (count + 1) <= capacity (array write ignored).
        assert_eq!(
            expresso_logic::simplify(&pre),
            Term::var("count")
                .add(Term::int(1))
                .le(Term::var("capacity"))
        );
    }

    #[test]
    fn array_write_conflicts_with_array_post() {
        let (m, t) = fixture();
        let add = m.method("add").unwrap();
        let body = &m.ccr(add.ccrs[0]).body;
        let post = Term::select("buf", Term::int(0)).ge(Term::int(0));
        assert!(matches!(wp(body, &post, &t), Err(WpError::ArrayWrite(_))));
    }

    #[test]
    fn conditional_produces_both_branches() {
        let (m, t) = fixture();
        let toggle = m.method("toggle").unwrap();
        let body = &m.ccr(toggle.ccrs[0]).body;
        let post = Formula::bool_var("stopped");
        let pre = wp(body, &post, &t).unwrap();
        // From any state: if stopped then post becomes false, else true, so
        // wp == !stopped.
        let solver = expresso_smt::Solver::new();
        assert!(solver
            .check_equiv(&pre, &Formula::not(Formula::bool_var("stopped")))
            .is_valid());
    }

    #[test]
    fn while_loop_is_over_approximated_soundly() {
        let (m, t) = fixture();
        let drain = m.method("drain").unwrap();
        let body = &m.ccr(drain.ccrs[0]).body;
        // After the loop, count <= 0 is guaranteed by the exit condition.
        let post = Term::var("count").le(Term::int(0));
        let pre = wp(body, &post, &t).unwrap();
        let solver = expresso_smt::Solver::new();
        // The wp must be implied by `true` (it is a tautology: any exit state
        // has count <= 0).
        assert!(solver.check_valid(&pre).is_valid());
        // A postcondition that the loop cannot guarantee must not be provable.
        let post = Term::var("count").ge(Term::int(1));
        let pre = wp(body, &post, &t).unwrap();
        assert!(!solver.check_valid(&pre).is_valid());
    }

    #[test]
    fn sequencing_composes_right_to_left() {
        let (_, t) = fixture();
        // count = count + 1; count = count * 2   with post count == 4  gives
        // (count + 1) * 2 == 4, i.e. count == 1.
        let stmt = Stmt::seq(vec![
            Stmt::Assign(
                "count".into(),
                expresso_monitor_lang::parse_expr("count + 1").unwrap(),
            ),
            Stmt::Assign(
                "count".into(),
                expresso_monitor_lang::parse_expr("count * 2").unwrap(),
            ),
        ]);
        let post = Term::var("count").eq(Term::int(4));
        let pre = wp(&stmt, &post, &t).unwrap();
        let solver = expresso_smt::Solver::new();
        assert!(solver
            .check_equiv(&pre, &Term::var("count").eq(Term::int(1)))
            .is_valid());
    }

    #[test]
    fn wp_id_matches_tree_wp() {
        let (m, t) = fixture();
        let interner = Interner::new();
        let posts = vec![
            Term::var("count").le(Term::var("capacity")),
            Term::var("count").le(Term::int(0)),
            Formula::bool_var("stopped"),
            Formula::and(vec![
                Term::var("count").ge(Term::int(0)),
                Formula::not(Formula::bool_var("stopped")),
            ]),
        ];
        for method in ["add", "drain", "toggle"] {
            let body = &m.ccr(m.method(method).unwrap().ccrs[0]).body;
            for post in &posts {
                let tree = wp(body, post, &t);
                let id = wp_id(body, interner.intern(post), &t, &interner);
                match (tree, id) {
                    (Ok(tree), Ok(id)) => {
                        assert_eq!(interner.formula(id), tree, "{method} diverged on {post}")
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (tree, id) => panic!("{method} diverged on {post}: {tree:?} vs {id:?}"),
                }
            }
        }
    }

    #[test]
    fn wp_id_rejects_array_writes_like_tree_wp() {
        let (m, t) = fixture();
        let interner = Interner::new();
        let body = &m.ccr(m.method("add").unwrap().ccrs[0]).body;
        let post = Term::select("buf", Term::int(0)).ge(Term::int(0));
        assert!(matches!(
            wp_id(body, interner.intern(&post), &t, &interner),
            Err(WpError::ArrayWrite(_))
        ));
    }

    #[test]
    fn boolean_assignment_substitutes_formula() {
        let (_, t) = fixture();
        let stmt = Stmt::Assign(
            "stopped".into(),
            expresso_monitor_lang::parse_expr("count == 0").unwrap(),
        );
        let post = Formula::not(Formula::bool_var("stopped"));
        let pre = wp(&stmt, &post, &t).unwrap();
        let solver = expresso_smt::Solver::new();
        assert!(solver
            .check_equiv(&pre, &Term::var("count").ne(Term::int(0)))
            .is_valid());
    }
}

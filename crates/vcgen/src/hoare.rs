//! Hoare-triple discharge and commutativity checking.

use crate::cache::{lowering_fingerprint, LoweringFingerprint, WpCache};
use crate::wp::{wp, wp_id, WpError};
use expresso_logic::{fresh_name, Formula, FormulaId, Interner, Subst, Term};
use expresso_monitor_lang::{Monitor, Stmt, Type, VarTable};
use expresso_smt::{Solver, ValidityResult};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, RwLock};

/// A Hoare triple `{pre} stmt {post}` over a CCR body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoareTriple {
    /// Precondition.
    pub pre: Formula,
    /// The program fragment (a CCR body).
    pub stmt: Stmt,
    /// Postcondition.
    pub post: Formula,
    /// A human-readable description of why the triple was generated, used in
    /// reports and debugging output.
    pub description: String,
}

impl fmt::Display for HoareTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}}} … {{{}}} ({})",
            self.pre, self.post, self.description
        )
    }
}

/// The outcome of discharging a triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripleStatus {
    /// Proven valid.
    Valid,
    /// A counterexample exists (or the solver found the VC falsifiable).
    Invalid,
    /// Could not be decided (outside the fragment, resource limits); callers
    /// must treat this exactly like [`TripleStatus::Invalid`].
    Unknown,
}

impl TripleStatus {
    /// `true` only when the triple was proven.
    pub fn is_valid(self) -> bool {
        self == TripleStatus::Valid
    }
}

impl From<&ValidityResult> for TripleStatus {
    fn from(verdict: &ValidityResult) -> TripleStatus {
        match verdict {
            ValidityResult::Valid => TripleStatus::Valid,
            ValidityResult::Invalid(_) => TripleStatus::Invalid,
            ValidityResult::Unknown(_) => TripleStatus::Unknown,
        }
    }
}

/// Verification-condition generator bound to a monitor, its symbol table and a
/// solver.
#[derive(Debug)]
pub struct VcGen<'a> {
    monitor: &'a Monitor,
    table: &'a VarTable,
    solver: &'a Solver,
    /// Memoized `(fingerprint, body, post-id) → wp` session. The pipeline
    /// shares one session between the abduction and placement passes of a
    /// single analysis; the session's store may be suite-wide.
    wp_cache: Arc<WpCache>,
    /// Per-statement lowering fingerprints. A fingerprint is a pure function
    /// of `(stmt, table)` and this generator is bound to one table, so it is
    /// computed once per distinct statement instead of on every WP lookup
    /// (recomputation walks the statement and allocates variable sets). The
    /// map is read-locked on the hit path so parallel pair tasks sharing one
    /// generator do not serialize on it.
    fingerprints: RwLock<HashMap<Stmt, LoweringFingerprint>>,
}

impl<'a> VcGen<'a> {
    /// Creates a generator for `monitor` with a fresh private WP cache.
    pub fn new(monitor: &'a Monitor, table: &'a VarTable, solver: &'a Solver) -> Self {
        VcGen::with_wp_cache(monitor, table, solver, Arc::new(WpCache::default()))
    }

    /// Creates a generator sharing an existing WP session. The session's
    /// store must have been populated against the **same formula arena**
    /// (`solver.interner()`): cached `FormulaId`s are only meaningful in the
    /// arena that minted them. Entries from other monitors are safe — keys
    /// carry a lowering fingerprint of the statement's table slice.
    pub fn with_wp_cache(
        monitor: &'a Monitor,
        table: &'a VarTable,
        solver: &'a Solver,
        wp_cache: Arc<WpCache>,
    ) -> Self {
        VcGen {
            monitor,
            table,
            solver,
            wp_cache,
            fingerprints: RwLock::new(HashMap::new()),
        }
    }

    /// The WP memo cache this generator consults.
    pub fn wp_cache(&self) -> &Arc<WpCache> {
        &self.wp_cache
    }

    /// The monitor this generator reasons about.
    pub fn monitor(&self) -> &Monitor {
        self.monitor
    }

    /// The monitor's symbol table.
    pub fn table(&self) -> &VarTable {
        self.table
    }

    /// The underlying solver.
    pub fn solver(&self) -> &Solver {
        self.solver
    }

    /// The formula arena shared with the solver. Every verification condition
    /// this generator builds lives in this arena.
    pub fn interner(&self) -> &Arc<Interner> {
        self.solver.interner()
    }

    /// Discharges `{pre} stmt {post}` by computing the weakest precondition
    /// and checking `pre ⇒ wp(stmt, post)`.
    ///
    /// The tree arguments are interned once and the VC is built entirely as
    /// ids; use [`VcGen::check_triple_ids`] directly when the caller already
    /// holds interned formulas (placement does).
    pub fn check_triple(&self, pre: &Formula, stmt: &Stmt, post: &Formula) -> TripleStatus {
        let interner = self.interner();
        let pre = interner.intern(pre);
        let post = interner.intern(post);
        self.check_triple_ids(pre, stmt, post)
    }

    /// Discharges `{pre} stmt {post}` over interned formulas.
    pub fn check_triple_ids(&self, pre: FormulaId, stmt: &Stmt, post: FormulaId) -> TripleStatus {
        match self.wp_id(stmt, post) {
            Ok(weakest) => (&self.solver.check_implies_ids(pre, weakest)).into(),
            Err(WpError::ArrayWrite(_)) | Err(WpError::Lower(_)) => TripleStatus::Unknown,
        }
    }

    /// Discharges a pre-built [`HoareTriple`].
    pub fn check(&self, triple: &HoareTriple) -> TripleStatus {
        self.check_triple(&triple.pre, &triple.stmt, &triple.post)
    }

    /// Discharges a batch of triples, returning index-aligned statuses.
    ///
    /// Batch-aware: the `(body, post)` WP cache dedupes the shared weakest-
    /// precondition work across the batch, structurally identical VCs are
    /// discharged once, and the distinct VCs run in expected-cost order
    /// (cached verdicts first, then ascending formula size) so cheap
    /// refutations warm the solver's theory/QE memo tables before the
    /// expensive obligations hit them. See [`VcGen::check_triples_ids`].
    pub fn check_triples(&self, triples: &[HoareTriple]) -> Vec<TripleStatus> {
        let interner = self.interner().clone();
        let obligations: Vec<(FormulaId, &Stmt, FormulaId)> = triples
            .iter()
            .map(|t| (interner.intern(&t.pre), &t.stmt, interner.intern(&t.post)))
            .collect();
        self.check_triples_ids(&obligations)
    }

    /// Discharges a batch of `(pre, stmt, post)` obligations over interned
    /// formulas, returning index-aligned statuses. This is the batch-aware
    /// core behind [`VcGen::check_triples`]; see there for the strategy.
    pub fn check_triples_ids(
        &self,
        obligations: &[(FormulaId, &Stmt, FormulaId)],
    ) -> Vec<TripleStatus> {
        let interner = self.interner();
        // Phase 1: one WP per distinct (body, post) — the cache collapses the
        // duplicates — then the VC as an interned implication. `None` marks an
        // obligation whose wp failed (conservatively Unknown).
        let vcs: Vec<Option<FormulaId>> = obligations
            .iter()
            .map(|&(pre, stmt, post)| {
                self.wp_id(stmt, post)
                    .ok()
                    .map(|weakest| interner.mk_implies(pre, weakest))
            })
            .collect();
        // Phase 2: discharge each distinct VC once, scheduling the batch by
        // expected cost. The solver's batch entry point implements the
        // dedupe + (cached verdict, size) ordering.
        let distinct: Vec<FormulaId> = vcs.iter().copied().flatten().collect();
        let verdicts = self.solver.check_valid_batch(&distinct);
        let status_of: std::collections::HashMap<FormulaId, TripleStatus> = distinct
            .iter()
            .zip(&verdicts)
            .map(|(&vc, verdict)| (vc, TripleStatus::from(verdict)))
            .collect();
        vcs.into_iter()
            .map(|vc| vc.map_or(TripleStatus::Unknown, |vc| status_of[&vc]))
            .collect()
    }

    /// Computes `wp(stmt, post)` using the monitor's symbol table.
    ///
    /// # Errors
    ///
    /// Propagates [`WpError`] from the underlying computation.
    pub fn wp(&self, stmt: &Stmt, post: &Formula) -> Result<Formula, WpError> {
        wp(stmt, post, self.table)
    }

    /// Computes `wp(stmt, post)` over interned formulas, memoized on the
    /// generator's WP session under the statement's lowering fingerprint
    /// (so a suite-wide store can serve hits across monitors soundly).
    ///
    /// # Errors
    ///
    /// Propagates [`WpError`] from the underlying computation.
    pub fn wp_id(&self, stmt: &Stmt, post: FormulaId) -> Result<FormulaId, WpError> {
        let fingerprint = self.fingerprint(stmt);
        self.wp_cache
            .get_or_compute_fingerprinted(&fingerprint, stmt, post, || {
                wp_id(stmt, post, self.table, self.interner())
            })
    }

    /// The statement's lowering fingerprint against this generator's table,
    /// memoized per distinct statement (read-locked on the hit path).
    fn fingerprint(&self, stmt: &Stmt) -> LoweringFingerprint {
        if let Some(fingerprint) = self.fingerprints.read().unwrap().get(stmt) {
            return Arc::clone(fingerprint);
        }
        let fingerprint = lowering_fingerprint(stmt, self.table);
        self.fingerprints
            .write()
            .unwrap()
            .entry(stmt.clone())
            .or_insert_with(|| Arc::clone(&fingerprint));
        fingerprint
    }

    /// Renames every thread-local variable occurring in `formula` to a fresh
    /// copy, returning the renamed formula (paper §4.2).
    ///
    /// `avoid` lists additional names that must not be reused (typically the
    /// free variables of the other formulas participating in the same VC).
    pub fn rename_locals(&self, formula: &Formula, avoid: &HashSet<String>) -> Formula {
        let locals: Vec<String> = formula
            .free_vars()
            .into_iter()
            .filter(|v| self.table.is_local(v))
            .collect();
        if locals.is_empty() {
            return formula.clone();
        }
        let mut taken: HashSet<String> = formula.free_vars();
        taken.extend(avoid.iter().cloned());
        let mut subst = Subst::new();
        for local in locals {
            let fresh = fresh_name(&format!("{local}!other"), &taken);
            taken.insert(fresh.clone());
            if self.table.is_bool(&local) {
                subst.boolean(local, Formula::bool_var(fresh));
            } else {
                subst.int(local, Term::var(fresh));
            }
        }
        subst.apply(formula)
    }

    /// The paper's `Comm(w, M)` check: does `body` commute with the body of
    /// every *other* CCR of the monitor?
    pub fn commutes_with_all(&self, ccr: expresso_monitor_lang::CcrId) -> bool {
        let body = &self.monitor.ccr(ccr).body;
        self.monitor
            .all_ccrs()
            .filter(|other| other.id != ccr)
            .all(|other| self.commutes(body, &other.body))
    }

    /// Checks whether two statements commute: `s1; s2 ≡ s2; s1` on every
    /// shared scalar variable. Conservative (`false`) when either statement
    /// writes arrays, contains loops, or leaves the decidable fragment.
    pub fn commutes(&self, s1: &Stmt, s2: &Stmt) -> bool {
        if has_loop(s1) || has_loop(s2) {
            return false;
        }
        let writes_arrays = |s: &Stmt| s.assigned_vars().iter().any(|v| self.table.is_array(v));
        if writes_arrays(s1) || writes_arrays(s2) {
            // Array writes are havoc; only the trivial case of disjoint
            // variables would commute, and that is rare enough to skip.
            return false;
        }
        let order_a = Stmt::seq(vec![s1.clone(), s2.clone()]);
        let order_b = Stmt::seq(vec![s2.clone(), s1.clone()]);
        let interner = self.interner().clone();
        let mut affected: Vec<String> = s1
            .assigned_vars()
            .union(&s2.assigned_vars())
            .cloned()
            .collect();
        affected.sort();
        for var in affected {
            // Both orders run on interned ids so the (body, post) WP cache
            // serves the symmetric recomputations across CCR pairs.
            let post = match self.table.ty(&var) {
                Some(Type::Bool) => Formula::bool_var(var.clone()),
                Some(Type::Int) => {
                    let mut taken: HashSet<String> = s1.read_vars();
                    taken.extend(s2.read_vars());
                    taken.insert(var.clone());
                    let observer = fresh_name(&format!("{var}!obs"), &taken);
                    Term::var(var.clone()).eq(Term::var(observer))
                }
                _ => return false,
            };
            let post = interner.intern(&post);
            let (Ok(a), Ok(b)) = (self.wp_id(&order_a, post), self.wp_id(&order_b, post)) else {
                return false;
            };
            if !self.solver.check_equiv_ids(a, b).is_valid() {
                return false;
            }
        }
        true
    }
}

fn has_loop(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::While(..) => true,
        Stmt::Seq(parts) => parts.iter().any(has_loop),
        Stmt::If(_, t, e) => has_loop(t) || has_loop(e),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_monitor_lang::{check_monitor, parse_monitor};

    fn rw() -> (Monitor, VarTable) {
        let m = parse_monitor(
            r#"
            monitor RWLock {
                int readers = 0;
                bool writerIn = false;
                atomic void enterReader() { waituntil (!writerIn) { readers++; } }
                atomic void exitReader() { if (readers > 0) readers--; }
                atomic void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
                atomic void exitWriter() { writerIn = false; }
            }
            "#,
        )
        .unwrap();
        let t = check_monitor(&m).unwrap();
        (m, t)
    }

    fn pw() -> Formula {
        Formula::and(vec![
            Term::var("readers").eq(Term::int(0)),
            Formula::not(Formula::bool_var("writerIn")),
        ])
    }

    #[test]
    fn enter_reader_does_not_need_to_signal_writers() {
        // {readers >= 0 && !writerIn && !Pw} readers++ {!Pw}  — paper §2.
        let (m, t) = rw();
        let solver = Solver::new();
        let vc = VcGen::new(&m, &t, &solver);
        let enter_reader = m.method("enterReader").unwrap();
        let body = &m.ccr(enter_reader.ccrs[0]).body;
        let pre = Formula::and(vec![
            Term::var("readers").ge(Term::int(0)),
            Formula::not(Formula::bool_var("writerIn")),
            Formula::not(pw()),
        ]);
        assert_eq!(
            vc.check_triple(&pre, body, &Formula::not(pw())),
            TripleStatus::Valid
        );
        // Without the invariant the triple is not provable.
        let weak_pre = Formula::and(vec![
            Formula::not(Formula::bool_var("writerIn")),
            Formula::not(pw()),
        ]);
        assert_eq!(
            vc.check_triple(&weak_pre, body, &Formula::not(pw())),
            TripleStatus::Invalid
        );
    }

    #[test]
    fn exit_reader_must_signal_but_not_broadcast() {
        let (m, t) = rw();
        let solver = Solver::new();
        let vc = VcGen::new(&m, &t, &solver);
        let exit_reader = m.method("exitReader").unwrap();
        let body = &m.ccr(exit_reader.ccrs[0]).body;
        let inv = Term::var("readers").ge(Term::int(0));
        // Signal needed: {inv && !Pw} body {!Pw} is NOT valid.
        let pre = Formula::and(vec![inv.clone(), Formula::not(pw())]);
        assert_ne!(
            vc.check_triple(&pre, body, &Formula::not(pw())),
            TripleStatus::Valid
        );
        // Broadcast unnecessary: {inv && Pw} writerIn = true {!Pw} is valid.
        let enter_writer = m.method("enterWriter").unwrap();
        let writer_body = &m.ccr(enter_writer.ccrs[0]).body;
        let pre = Formula::and(vec![inv, pw()]);
        assert_eq!(
            vc.check_triple(&pre, writer_body, &Formula::not(pw())),
            TripleStatus::Valid
        );
    }

    #[test]
    fn local_variable_renaming_avoids_unsound_conclusions() {
        // Example 4.2 from the paper.
        let m = parse_monitor(
            r#"
            monitor M {
                int y = 0;
                atomic void m1(int x) { waituntil (x < y) { x = y + 1; } }
                atomic void m2() { y = y + 2; }
            }
            "#,
        )
        .unwrap();
        let t = check_monitor(&m).unwrap();
        let solver = Solver::new();
        let vc = VcGen::new(&m, &t, &solver);
        let m1 = m.method("m1").unwrap();
        let body = &m.ccr(m1.ccrs[0]).body;
        let p = Term::var("x").lt(Term::var("y"));
        // Without renaming, the broadcast-avoidance triple appears valid …
        let pre = p.clone();
        assert_eq!(
            vc.check_triple(&pre, body, &Formula::not(p.clone())),
            TripleStatus::Valid
        );
        // … but after renaming the other thread's local x the triple is
        // (correctly) invalid, so a broadcast is required.
        let renamed = vc.rename_locals(&p, &HashSet::new());
        assert_ne!(renamed, p);
        assert_ne!(
            vc.check_triple(&renamed, body, &Formula::not(renamed.clone())),
            TripleStatus::Valid
        );
    }

    #[test]
    fn commutativity_of_independent_updates() {
        let m = parse_monitor(
            r#"
            monitor M {
                int a = 0;
                int b = 0;
                bool flag = false;
                atomic void incA() { a++; }
                atomic void incB() { b++; }
                atomic void setA() { a = 5; }
                atomic void toggle() { flag = !flag; }
            }
            "#,
        )
        .unwrap();
        let t = check_monitor(&m).unwrap();
        let solver = Solver::new();
        let vc = VcGen::new(&m, &t, &solver);
        let body = |name: &str| m.ccr(m.method(name).unwrap().ccrs[0]).body.clone();
        // Increments of different variables commute.
        assert!(vc.commutes(&body("incA"), &body("incB")));
        // Two increments of the same variable commute.
        assert!(vc.commutes(&body("incA"), &body("incA")));
        // Increment and overwrite of the same variable do not commute.
        assert!(!vc.commutes(&body("incA"), &body("setA")));
        // Boolean toggle commutes with integer increment.
        assert!(vc.commutes(&body("toggle"), &body("incA")));
    }

    #[test]
    fn unknown_for_array_dependent_postconditions() {
        let m = parse_monitor(
            r#"
            monitor M(int n) {
                int[] slots = new int[n];
                int count = 0;
                atomic void fill() { slots[count] = 1; }
            }
            "#,
        )
        .unwrap();
        let t = check_monitor(&m).unwrap();
        let solver = Solver::new();
        let vc = VcGen::new(&m, &t, &solver);
        let body = &m.ccr(m.method("fill").unwrap().ccrs[0]).body;
        let post = Term::select("slots", Term::int(0)).eq(Term::int(0));
        assert_eq!(
            vc.check_triple(&Formula::True, body, &post),
            TripleStatus::Unknown
        );
    }
}

//! SMT-discharged conditional independence of CCR fire transitions.
//!
//! The explorer's conservative dependence relation treats every pair of
//! blocking-CCR fires as dependent (wait-queue overlap plus rule-2b
//! minimum contention), which collapses partial-order reduction on exactly
//! the monitors the paper cares about: a `put` and a `take` of a bounded
//! buffer conflict on `count` and on each other's wait queues, yet from any
//! configuration where **both guards hold** the two bodies commute and
//! neither fire disables the other. This module discharges that refinement
//! statically, once per monitor:
//!
//! * **Guard disjointness** — `unsat(g_p ∧ g_q)` means the two fires are
//!   never co-enabled, so no reachable configuration can reorder them.
//! * **Conditional independence** — otherwise the pair is independent when
//!   the bodies commute on every shared scalar (`wp`-equality of both
//!   orders) *and* each body preserves the other's guard
//!   (`{g_p ∧ g_q} s_p {g_q}` and symmetrically), so from any co-enabled
//!   configuration either order reaches the same state and neither fire
//!   disables the other.
//!
//! The *enabling* direction (a fire making a disabled fire enabled) stays
//! covered by the conservative relation: a thread whose guard is false
//! emits a separate **block** event, and block×fire pairs keep every
//! variable- and queue-conflict edge, so "q tried before p enabled it"
//! reorderings are still explored through the block shape.
//!
//! Verdicts are cached suite-wide in a [`DisjointnessStore`] keyed on
//! guard-formula and body content (with the bodies' lowering fingerprints,
//! so a type change re-keys the pair), and the store is persisted by
//! `expresso-persist`: a warm run serves every verdict from disk and issues
//! zero fresh queries.

use crate::cache::{lowering_fingerprint, LoweringFingerprint};
use crate::hoare::VcGen;
use expresso_logic::{fresh_name, Formula, FormulaId, Term};
use expresso_monitor_lang::{expr_to_formula, Ccr, CcrId, Monitor, Stmt, Type, VarTable};
use expresso_smt::Solver;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Pairwise fire-independence verdicts for one monitor, keyed on
/// `(CcrId, CcrId)` with the smaller id first. `true` means the two fires
/// were **proven** independent; `false` (or an absent key) keeps the
/// conservative relation.
pub type IndependenceTable = BTreeMap<(CcrId, CcrId), bool>;

/// Content-addressed key of one pair verdict: the interned guard formulas
/// plus the bodies with their lowering fingerprints. Guard trees carry the
/// boolean/integer distinction structurally; the fingerprints pin the
/// symbol-table slice the `wp` computations consult, so two monitors share
/// a verdict exactly when every proof input is identical.
type PairKey = (
    FormulaId,
    LoweringFingerprint,
    Stmt,
    FormulaId,
    LoweringFingerprint,
    Stmt,
);

/// One exported store entry in the shape the persistence layer serializes:
/// both sides' `(guard-id, fingerprint, body)` plus the verdict. The two
/// [`FormulaId`]s are only meaningful in the arena the store was filled
/// against; `expresso-persist` swaps them for formula trees on disk.
pub type DisjointnessExportEntry = (
    FormulaId,
    LoweringFingerprint,
    Stmt,
    FormulaId,
    LoweringFingerprint,
    Stmt,
    bool,
);

/// Counters of a [`DisjointnessStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DisjointnessStats {
    /// Pair verdicts computed fresh (solver queries issued).
    pub queries: usize,
    /// Pair verdicts served from the store (seeded or same-process).
    pub hits: usize,
}

impl DisjointnessStats {
    /// Adapt into a metric group for [`expresso_obs::MetricsRegistry`].
    pub fn metrics(&self) -> Vec<expresso_obs::Metric> {
        use expresso_obs::Metric;
        vec![
            Metric::counter("queries", self.queries as u64),
            Metric::counter("hits", self.hits as u64),
        ]
    }
}

/// The suite-wide memo table of pair-independence verdicts. One store is
/// only ever valid for **one formula arena** (keys hold interned guard
/// ids); `SharedAnalysisContext` owns one next to its arena.
#[derive(Debug, Default)]
pub struct DisjointnessStore {
    entries: Mutex<HashMap<PairKey, bool>>,
    queries: AtomicUsize,
    hits: AtomicUsize,
}

impl DisjointnessStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DisjointnessStore::default()
    }

    /// Snapshot of the query/hit counters.
    pub fn stats(&self) -> DisjointnessStats {
        DisjointnessStats {
            queries: self.queries.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// Number of cached pair verdicts.
    pub fn entry_count(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Snapshot of every verdict for serialization by the persistence
    /// layer. Callers wanting a deterministic artifact sort the result.
    pub fn export_entries(&self) -> Vec<DisjointnessExportEntry> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|((ga, fa, ba, gb, fb, bb), &verdict)| {
                (
                    *ga,
                    fa.clone(),
                    ba.clone(),
                    *gb,
                    fb.clone(),
                    bb.clone(),
                    verdict,
                )
            })
            .collect()
    }

    /// Seeds the store with entries re-interned from a persisted artifact.
    /// Existing entries win over seeded ones. Returns the number inserted.
    pub fn seed_entries(&self, entries: Vec<DisjointnessExportEntry>) -> usize {
        let mut map = self.entries.lock().unwrap();
        let mut inserted = 0;
        for (ga, fa, ba, gb, fb, bb, verdict) in entries {
            if let std::collections::hash_map::Entry::Vacant(slot) =
                map.entry((ga, fa, ba, gb, fb, bb))
            {
                slot.insert(verdict);
                inserted += 1;
            }
        }
        inserted
    }

    fn lookup(&self, key: &PairKey) -> Option<bool> {
        let verdict = self.entries.lock().unwrap().get(key).copied();
        if verdict.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    fn record(&self, key: PairKey, verdict: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().unwrap().insert(key, verdict);
    }
}

/// Computes the refined fire-independence table of `monitor`, serving every
/// pair it can from `store` and recording fresh verdicts back into it.
pub fn refine_independence(
    monitor: &Monitor,
    table: &VarTable,
    solver: &Solver,
    store: &DisjointnessStore,
) -> IndependenceTable {
    let _span = expresso_obs::span!("vcgen.refine", "{}", monitor.name);
    let vc = VcGen::new(monitor, table, solver);
    let ccrs: Vec<&Ccr> = monitor.all_ccrs().collect();
    let mut out = IndependenceTable::new();
    for (i, p) in ccrs.iter().enumerate() {
        for q in &ccrs[i..] {
            out.insert((p.id, q.id), pair_independent(&vc, table, store, p, q));
        }
    }
    out
}

/// One pair's verdict: store lookup, then the proof obligations on a miss.
fn pair_independent(
    vc: &VcGen,
    table: &VarTable,
    store: &DisjointnessStore,
    p: &Ccr,
    q: &Ccr,
) -> bool {
    // A guard outside the lowerable fragment gets no refinement.
    let (Ok(gp), Ok(gq)) = (
        expr_to_formula(&p.guard, table),
        expr_to_formula(&q.guard, table),
    ) else {
        return false;
    };
    let interner = vc.interner();
    let key = (
        interner.intern(&gp),
        lowering_fingerprint(&p.body, table),
        p.body.clone(),
        interner.intern(&gq),
        lowering_fingerprint(&q.body, table),
        q.body.clone(),
    );
    if let Some(verdict) = store.lookup(&key) {
        return verdict;
    }
    let verdict = prove_independent(vc, table, p, q, &gp, &gq);
    store.record(key, verdict);
    verdict
}

/// The actual proof obligations (no caching).
fn prove_independent(
    vc: &VcGen,
    table: &VarTable,
    p: &Ccr,
    q: &Ccr,
    gp: &Formula,
    gq: &Formula,
) -> bool {
    // Thread-local namespaces: the VCs identify equal names, so two sides
    // sharing a local name (or a CCR paired with itself while using any
    // local) would conflate distinct threads' values — bail conservatively.
    let locals = |c: &Ccr| -> HashSet<String> {
        c.guard
            .vars()
            .into_iter()
            .chain(c.body.read_vars())
            .chain(c.body.assigned_vars())
            .filter(|v| table.is_local(v))
            .collect()
    };
    let (lp, lq) = (locals(p), locals(q));
    if p.id == q.id {
        if !lp.is_empty() {
            return false;
        }
    } else if lp.intersection(&lq).next().is_some() {
        return false;
    }
    if has_loop(&p.body) || has_loop(&q.body) {
        return false;
    }

    // Fast path: guard-disjoint fires are never co-enabled.
    if vc
        .solver()
        .check_sat(&Formula::and(vec![gp.clone(), gq.clone()]))
        .is_unsat()
    {
        return true;
    }

    // Conditional independence from any co-enabled configuration: the
    // bodies commute and each preserves the other's guard.
    if !bodies_commute(vc, table, p, q) {
        return false;
    }
    let interner = vc.interner();
    let pre = interner.intern(&Formula::and(vec![gp.clone(), gq.clone()]));
    let gp_id = interner.intern(gp);
    let gq_id = interner.intern(gq);
    vc.check_triple_ids(pre, &p.body, gq_id).is_valid()
        && vc.check_triple_ids(pre, &q.body, gp_id).is_valid()
}

/// Do the two bodies commute (`s_p; s_q ≡ s_q; s_p`) on every shared
/// variable? Unlike [`VcGen::commutes`] this handles **one-sided** array
/// writes: `wp` passes an array assignment through unchanged when the
/// postcondition never mentions the array, so scalar observers see through
/// it, and [`array_writes_commute`] separately checks that the written
/// cells themselves are order-insensitive.
fn bodies_commute(vc: &VcGen, table: &VarTable, p: &Ccr, q: &Ccr) -> bool {
    if p.id == q.id {
        // `s; s ≡ s; s` syntactically.
        return true;
    }
    let arrays = |s: &Stmt| -> BTreeSet<String> {
        s.assigned_vars()
            .into_iter()
            .filter(|v| table.is_array(v))
            .collect()
    };
    let (pa, qa) = (arrays(&p.body), arrays(&q.body));
    if !pa.is_empty() && !qa.is_empty() {
        // Both sides write arrays: the cells could alias.
        return false;
    }
    if !pa.is_empty() && !array_writes_commute(&p.body, &q.body, &pa) {
        return false;
    }
    if !qa.is_empty() && !array_writes_commute(&q.body, &p.body, &qa) {
        return false;
    }

    let order_a = Stmt::seq(vec![p.body.clone(), q.body.clone()]);
    let order_b = Stmt::seq(vec![q.body.clone(), p.body.clone()]);
    let interner = vc.interner().clone();
    let mut affected: Vec<String> = p
        .body
        .assigned_vars()
        .union(&q.body.assigned_vars())
        .filter(|v| !table.is_array(v))
        .cloned()
        .collect();
    affected.sort();
    for var in affected {
        let post = match table.ty(&var) {
            Some(Type::Bool) => Formula::bool_var(var.clone()),
            Some(Type::Int) => {
                let mut taken: HashSet<String> = p.body.read_vars();
                taken.extend(q.body.read_vars());
                taken.insert(var.clone());
                let observer = fresh_name(&format!("{var}!obs"), &taken);
                Term::var(var.clone()).eq(Term::var(observer))
            }
            _ => return false,
        };
        let post = interner.intern(&post);
        let (Ok(a), Ok(b)) = (vc.wp_id(&order_a, post), vc.wp_id(&order_b, post)) else {
            return false;
        };
        if !vc.solver().check_equiv_ids(a, b).is_valid() {
            return false;
        }
    }
    true
}

/// Soundness of one-sided array writes in `writer` against `other`: every
/// written cell must receive the same value in either order, and `other`
/// must not observe the array at all. Holds when (a) `other` never reads or
/// writes the written arrays, and (b) each array assignment's index and
/// value expressions read only scalars that neither `other` nor any
/// *earlier* statement of `writer` assigns — then the cell and value are
/// identical whichever body runs first.
fn array_writes_commute(writer: &Stmt, other: &Stmt, written_arrays: &BTreeSet<String>) -> bool {
    let other_touches: HashSet<String> = other
        .read_vars()
        .union(&other.assigned_vars())
        .cloned()
        .collect();
    if written_arrays.iter().any(|a| other_touches.contains(a)) {
        return false;
    }
    let other_writes = other.assigned_vars();
    let mut assigned_before = HashSet::new();
    stable_array_inputs(writer, &other_writes, &mut assigned_before)
}

/// Walks `writer` in execution order, tracking scalars assigned so far, and
/// checks every array assignment's inputs against them and `other_writes`.
/// An input that is itself an array read is rejected (aliasing).
fn stable_array_inputs(
    stmt: &Stmt,
    other_writes: &HashSet<String>,
    assigned_before: &mut HashSet<String>,
) -> bool {
    match stmt {
        Stmt::Skip => true,
        Stmt::Seq(parts) => parts
            .iter()
            .all(|s| stable_array_inputs(s, other_writes, assigned_before)),
        Stmt::Assign(v, _) | Stmt::Local(v, _, _) => {
            assigned_before.insert(v.clone());
            true
        }
        Stmt::ArrayAssign(array, index, value) => {
            let mut inputs = index.vars();
            inputs.extend(value.vars());
            inputs.remove(array);
            let ok = inputs
                .iter()
                .all(|v| !assigned_before.contains(v) && !other_writes.contains(v))
                // The value may not be loaded from an array (the loaded cell
                // could be one the other order already overwrote).
                && !value.vars().contains(array.as_str())
                && !index.vars().contains(array.as_str());
            assigned_before.insert(array.clone());
            ok
        }
        Stmt::If(cond, then_branch, else_branch) => {
            // When a branch writes an array, the condition decides *which*
            // cells get written, so its inputs must be stable too.
            let unstable_cond = cond
                .vars()
                .iter()
                .any(|v| assigned_before.contains(v) || other_writes.contains(v));
            if unstable_cond
                && (contains_array_assign(then_branch) || contains_array_assign(else_branch))
            {
                return false;
            }
            let mut then_assigned = assigned_before.clone();
            let then_ok = stable_array_inputs(then_branch, other_writes, &mut then_assigned);
            let mut else_assigned = assigned_before.clone();
            let else_ok = stable_array_inputs(else_branch, other_writes, &mut else_assigned);
            assigned_before.extend(then_assigned);
            assigned_before.extend(else_assigned);
            then_ok && else_ok
        }
        // Loops were rejected before commutation is attempted.
        Stmt::While(..) => false,
    }
}

fn contains_array_assign(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::ArrayAssign(..) => true,
        Stmt::Seq(parts) => parts.iter().any(contains_array_assign),
        Stmt::If(_, t, e) => contains_array_assign(t) || contains_array_assign(e),
        Stmt::While(_, b) => contains_array_assign(b),
        _ => false,
    }
}

fn has_loop(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::While(..) => true,
        Stmt::Seq(parts) => parts.iter().any(has_loop),
        Stmt::If(_, t, e) => has_loop(t) || has_loop(e),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_monitor_lang::{check_monitor, parse_monitor};

    fn analyzed(src: &str) -> (Monitor, VarTable, Solver, DisjointnessStore) {
        let monitor = parse_monitor(src).unwrap();
        let table = check_monitor(&monitor).unwrap();
        (monitor, table, Solver::new(), DisjointnessStore::new())
    }

    fn ccr(monitor: &Monitor, method: &str) -> CcrId {
        monitor.method(method).unwrap().ccrs[0]
    }

    fn pair(table: &IndependenceTable, a: CcrId, b: CcrId) -> bool {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        *table.get(&key).unwrap()
    }

    const BOUNDED_BUFFER: &str = r#"
        monitor BoundedBuffer(int capacity) {
            int[] buffer = new int[capacity];
            int head = 0;
            int tail = 0;
            int count = 0;
            atomic void put(int item) {
                waituntil (count < capacity) {
                    buffer[tail] = item;
                    tail = tail + 1;
                    if (tail >= capacity) { tail = 0; }
                    count++;
                }
            }
            atomic int take() {
                waituntil (count > 0) {
                    head = head + 1;
                    if (head >= capacity) { head = 0; }
                    count--;
                }
            }
        }
    "#;

    #[test]
    fn bounded_buffer_put_take_is_conditionally_independent() {
        let (monitor, table, solver, store) = analyzed(BOUNDED_BUFFER);
        let t = refine_independence(&monitor, &table, &solver, &store);
        let (put, take) = (ccr(&monitor, "put"), ccr(&monitor, "take"));
        // put and take commute and preserve each other's guards.
        assert!(pair(&t, put, take), "put × take must be independent");
        // Two puts write the same array cells; two takes can disable each
        // other (`count > 0` is not preserved by `count--`).
        assert!(!pair(&t, put, put));
        assert!(!pair(&t, take, take));
    }

    #[test]
    fn counter_guard_preservation_separates_release_and_acquire() {
        let (monitor, table, solver, store) = analyzed(
            r#"
            monitor Counter {
                int count = 0;
                atomic void release() { count++; }
                atomic void acquire() { waituntil (count > 0) { count--; } }
            }
            "#,
        );
        let t = refine_independence(&monitor, &table, &solver, &store);
        let (release, acquire) = (ccr(&monitor, "release"), ccr(&monitor, "acquire"));
        // A release can never disable anything and increments commute.
        assert!(pair(&t, release, release));
        assert!(pair(&t, release, acquire));
        // One acquire can disable the other.
        assert!(!pair(&t, acquire, acquire));
    }

    #[test]
    fn guard_disjoint_fires_are_independent_without_commutation() {
        let (monitor, table, solver, store) = analyzed(
            r#"
            monitor Modes {
                int mode = 0;
                bool flag = false;
                atomic void low() { waituntil (mode < 0) { flag = true; } }
                atomic void high() { waituntil (mode > 0) { flag = false; } }
            }
            "#,
        );
        let t = refine_independence(&monitor, &table, &solver, &store);
        // The bodies overwrite the same flag (no commutation), but the
        // guards are unsatisfiable together: never co-enabled.
        assert!(pair(&t, ccr(&monitor, "low"), ccr(&monitor, "high")));
    }

    #[test]
    fn non_commuting_overwrites_stay_dependent() {
        let (monitor, table, solver, store) = analyzed(
            r#"
            monitor Busy {
                bool busy = false;
                atomic void start() { busy = true; }
                atomic void finish() { busy = false; }
            }
            "#,
        );
        let t = refine_independence(&monitor, &table, &solver, &store);
        assert!(!pair(&t, ccr(&monitor, "start"), ccr(&monitor, "finish")));
    }

    #[test]
    fn same_ccr_with_locals_bails_conservatively() {
        let (monitor, table, solver, store) = analyzed(
            r#"
            monitor Params {
                int a = 0;
                atomic void bump(int n) { a = a + n; }
                atomic void shift(int m) { a = a + m; }
            }
            "#,
        );
        let t = refine_independence(&monitor, &table, &solver, &store);
        let (bump, shift) = (ccr(&monitor, "bump"), ccr(&monitor, "shift"));
        // Two threads in the *same* CCR have distinct argument values the VC
        // would conflate under one name, so the pair gets no refinement …
        assert!(!pair(&t, bump, bump));
        // … while distinct CCRs have disjoint local namespaces (the checker
        // enforces globally unique names) and still commute.
        assert!(pair(&t, bump, shift));
    }

    #[test]
    fn store_serves_repeat_analyses_without_new_queries() {
        let (monitor, table, solver, store) = analyzed(BOUNDED_BUFFER);
        let first = refine_independence(&monitor, &table, &solver, &store);
        let after_cold = store.stats();
        assert!(after_cold.queries > 0);
        assert_eq!(after_cold.hits, 0);
        let second = refine_independence(&monitor, &table, &solver, &store);
        let after_warm = store.stats();
        assert_eq!(first, second);
        assert_eq!(
            after_warm.queries, after_cold.queries,
            "second analysis must be served entirely from the store"
        );
        assert_eq!(after_warm.hits, after_cold.queries);
    }

    #[test]
    fn export_seed_round_trips_verdicts() {
        let (monitor, table, solver, store) = analyzed(BOUNDED_BUFFER);
        let first = refine_independence(&monitor, &table, &solver, &store);
        let entries = store.export_entries();
        assert_eq!(entries.len(), store.entry_count());
        let seeded = DisjointnessStore::new();
        assert_eq!(seeded.seed_entries(entries), store.entry_count());
        // Same arena, so the interned keys line up directly.
        let warm = refine_independence(&monitor, &table, &solver, &seeded);
        assert_eq!(first, warm);
        assert_eq!(seeded.stats().queries, 0, "warm run must not recompute");
    }
}

//! Verification-condition generation for monitor bodies.
//!
//! The signal-placement algorithm (paper §4) reduces every decision — "does
//! this CCR need to signal?", "can the signal be unconditional?", "is a
//! broadcast required?" — to the validity of Hoare triples over CCR bodies.
//! This crate computes weakest preconditions for the statement language of
//! Fig. 3, discharges triples with the workspace SMT solver, and provides the
//! commutativity check used by the §4.3 improvement.

pub mod cache;
pub mod hoare;
pub mod independence;
pub mod wp;

pub use cache::{
    lowering_fingerprint, LoweringFingerprint, WpCache, WpCacheStats, WpExportEntry, WpStore,
};
pub use hoare::{HoareTriple, TripleStatus, VcGen};
pub use independence::{
    refine_independence, DisjointnessExportEntry, DisjointnessStats, DisjointnessStore,
    IndependenceTable,
};
pub use wp::{wp, wp_id, WpError};

//! Monitor-invariant inference (paper Algorithm 2).

use crate::abduce::{abduce_ids, AbductionConfig};
use expresso_logic::{Formula, FormulaId};
use expresso_monitor_lang::{expr_to_formula, Monitor, VarTable};
use expresso_smt::Solver;
use expresso_vcgen::{HoareTriple, VcGen};
use std::collections::HashSet;
use std::sync::Arc;

/// The result of invariant inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantOutcome {
    /// The inferred monitor invariant (a conjunction of surviving candidates).
    pub invariant: Formula,
    /// Number of candidate predicates produced by abduction.
    pub candidates: usize,
    /// Number of candidates that survived the fixpoint.
    pub kept: usize,
    /// Number of fixpoint rounds executed.
    pub rounds: usize,
}

/// Infers a monitor invariant for `monitor`, generating the property-directed
/// triple set Θ from the signal-placement algorithm with `I = true`.
pub fn infer_monitor_invariant(
    monitor: &Monitor,
    table: &VarTable,
    solver: &Solver,
) -> InvariantOutcome {
    infer_monitor_invariant_configured(monitor, table, solver, &AbductionConfig::default())
}

/// [`infer_monitor_invariant`] with explicit abduction tunables (the pipeline
/// threads its parallelism flag through here).
pub fn infer_monitor_invariant_configured(
    monitor: &Monitor,
    table: &VarTable,
    solver: &Solver,
    config: &AbductionConfig,
) -> InvariantOutcome {
    let triples = placement_triples(monitor, table, solver);
    infer_with_triples_configured(monitor, table, solver, &triples, config)
}

/// Infers a monitor invariant using an explicit triple set Θ (Algorithm 2).
///
/// The algorithm abduces candidate strengthenings for every triple, then runs
/// a monomial predicate-abstraction fixpoint keeping only candidates that
/// (a) hold after the constructor (with the `requires` clause assumed) and
/// (b) are preserved by every CCR under the conjunction of the survivors.
pub fn infer_with_triples(
    monitor: &Monitor,
    table: &VarTable,
    solver: &Solver,
    triples: &[HoareTriple],
) -> InvariantOutcome {
    infer_with_triples_configured(monitor, table, solver, triples, &AbductionConfig::default())
}

/// [`infer_with_triples`] with explicit abduction tunables.
pub fn infer_with_triples_configured(
    monitor: &Monitor,
    table: &VarTable,
    solver: &Solver,
    triples: &[HoareTriple],
    config: &AbductionConfig,
) -> InvariantOutcome {
    let vcgen = match &config.wp_cache {
        Some(cache) => VcGen::with_wp_cache(monitor, table, solver, Arc::clone(cache)),
        None => VcGen::new(monitor, table, solver),
    };
    let interner = vcgen.interner().clone();

    // Phase 1: abduce candidate predicates. The pre/goal pair, the abduction
    // search and the candidate expansion all stay on interned ids — the
    // fixpoint hot path never reconstructs a formula tree — and deduplication
    // is a set lookup instead of a tree comparison.
    let mut candidates: Vec<FormulaId> = Vec::new();
    let mut seen: HashSet<FormulaId> = HashSet::new();
    'outer: for triple in triples {
        let post = interner.intern(&triple.post);
        let goal = match vcgen.wp_id(&triple.stmt, post) {
            Ok(g) => g,
            Err(_) => continue,
        };
        let pre = interner.intern(&triple.pre);
        for psi in abduce_ids(solver, pre, goal, config) {
            for candidate in expand_candidates_ids(&interner, psi) {
                if seen.insert(candidate) {
                    candidates.push(candidate);
                }
            }
        }
        // Keep the fixpoint tractable for large monitors: the invariant is a
        // best-effort strengthening, and extra candidates only cost analysis
        // time, never correctness.
        if candidates.len() > 32 {
            candidates.truncate(32);
            break 'outer;
        }
    }
    let total_candidates = candidates.len();

    // Phase 2: monomial predicate abstraction fixpoint, entirely over ids.
    // The same initiation/consecution VCs recur across rounds, so the solver
    // cache answers every repeated obligation without re-solving.
    let requires = interner.intern(&requires_formula(monitor, table));
    let constructor = monitor.constructor_body();
    let guards: Vec<(FormulaId, &expresso_monitor_lang::Ccr)> = monitor
        .all_ccrs()
        .map(|ccr| {
            let guard = expr_to_formula(&ccr.guard, table).unwrap_or(Formula::True);
            (interner.intern(&guard), ccr)
        })
        .collect();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let before = candidates.len();

        // (a) Initiation: {requires} Ctr(M) {ψ}. All constructor VCs are
        // independent, so they go through the batch-aware discharge path
        // (shared-wp dedupe + cheap-first ordering).
        let initiation: Vec<(FormulaId, &expresso_monitor_lang::Stmt, FormulaId)> = candidates
            .iter()
            .map(|&psi| (requires, &constructor, psi))
            .collect();
        let statuses = vcgen.check_triples_ids(&initiation);
        let mut initiated = statuses.iter().map(|s| s.is_valid());
        candidates.retain(|_| initiated.next().unwrap_or(false));

        // (b) Consecution: {I ∧ Guard(w)} Body(w) {ψ} for every CCR.
        let invariant = interner.mk_and(candidates.clone());
        candidates.retain(|&psi| {
            guards.iter().all(|&(guard, ccr)| {
                let pre = interner.mk_and(vec![invariant, guard]);
                vcgen.check_triple_ids(pre, &ccr.body, psi).is_valid()
            })
        });

        if candidates.len() == before || candidates.is_empty() {
            break;
        }
        if rounds > total_candidates + 1 {
            break;
        }
    }

    let kept = candidates.len();
    let invariant = interner.simplify(interner.mk_and(candidates));
    InvariantOutcome {
        invariant: interner.formula(invariant),
        candidates: total_candidates,
        kept,
        rounds,
    }
}

/// Builds the triple set Θ: the Hoare triples Algorithm 1 would try to prove
/// with `I = true` — the "no signal needed" triples and the "no broadcast
/// needed" triples, with thread-local variables renamed per §4.2.
pub fn placement_triples(monitor: &Monitor, table: &VarTable, solver: &Solver) -> Vec<HoareTriple> {
    let vcgen = VcGen::new(monitor, table, solver);
    let mut triples = Vec::new();
    let guards = monitor.guards();
    for ccr in monitor.all_ccrs() {
        let guard = match expr_to_formula(&ccr.guard, table) {
            Ok(g) => g,
            Err(_) => Formula::True,
        };
        for p in &guards {
            let Ok(p_formula) = expr_to_formula(p, table) else {
                continue;
            };
            let avoid: HashSet<String> = guard.free_vars();
            let p_renamed = vcgen.rename_locals(&p_formula, &avoid);
            // No-signal triple: {Guard(w) && !p} Body(w) {!p}.
            triples.push(HoareTriple {
                pre: Formula::and(vec![guard.clone(), Formula::not(p_renamed.clone())]),
                stmt: ccr.body.clone(),
                post: Formula::not(p_renamed.clone()),
                description: format!("no-signal({}, {})", monitor.ccr_label(ccr.id), p),
            });
        }
        // No-broadcast triple for the CCR's own guard: {p} Body(w) {!p}.
        if !ccr.never_blocks() {
            if let Ok(own_guard) = expr_to_formula(&ccr.guard, table) {
                triples.push(HoareTriple {
                    pre: own_guard.clone(),
                    stmt: ccr.body.clone(),
                    post: Formula::not(own_guard),
                    description: format!("no-broadcast({})", monitor.ccr_label(ccr.id)),
                });
            }
        }
    }
    triples
}

/// Expands an abduced candidate into itself plus its sub-formulas (conjuncts,
/// disjuncts and atoms in negation normal form), entirely over interned ids.
///
/// Abduction returns the *weakest* strengthening over the chosen variables,
/// which is frequently not inductive (e.g. `readers != -1` for the
/// readers-writers monitor). Its strengthenings — individual disjuncts such as
/// `readers > -1` — often are, and the Algorithm 2 fixpoint safely discards
/// whichever candidates are not invariants, so offering more candidates never
/// hurts soundness.
fn expand_candidates_ids(interner: &expresso_logic::Interner, psi: FormulaId) -> Vec<FormulaId> {
    let nnf = interner.nnf(psi);
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    collect_subformulas_ids(interner, nnf, &mut out, &mut seen);
    out
}

fn collect_subformulas_ids(
    interner: &expresso_logic::Interner,
    f: FormulaId,
    out: &mut Vec<FormulaId>,
    seen: &mut HashSet<FormulaId>,
) {
    let simplified = interner.simplify(f);
    if !interner.is_true(simplified) && !interner.is_false(simplified) && seen.insert(simplified) {
        out.push(simplified);
    }
    match interner.node(f) {
        expresso_logic::FormulaNode::And(parts) | expresso_logic::FormulaNode::Or(parts) => {
            for p in parts {
                collect_subformulas_ids(interner, p, out, seen);
            }
        }
        _ => {}
    }
}

fn requires_formula(monitor: &Monitor, table: &VarTable) -> Formula {
    monitor
        .requires
        .as_ref()
        .and_then(|r| expr_to_formula(r, table).ok())
        .unwrap_or(Formula::True)
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_logic::Term;
    use expresso_monitor_lang::{check_monitor, parse_monitor};

    fn infer(src: &str) -> (Formula, Solver) {
        let monitor = parse_monitor(src).unwrap();
        let table = check_monitor(&monitor).unwrap();
        let solver = Solver::new();
        let outcome = infer_monitor_invariant(&monitor, &table, &solver);
        (outcome.invariant, solver)
    }

    #[test]
    fn readers_writers_invariant_implies_nonnegative_readers() {
        let (inv, solver) = infer(
            r#"
            monitor RWLock {
                int readers = 0;
                bool writerIn = false;
                atomic void enterReader() { waituntil (!writerIn) { readers++; } }
                atomic void exitReader() { if (readers > 0) readers--; }
                atomic void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
                atomic void exitWriter() { writerIn = false; }
            }
            "#,
        );
        assert!(
            solver
                .check_implies(&inv, &Formula::not(Term::var("readers").eq(Term::int(-1))))
                .is_valid(),
            "invariant {inv} should rule out readers == -1"
        );
    }

    #[test]
    fn inferred_invariant_is_actually_inductive() {
        let src = r#"
            monitor Counter {
                int count = 0;
                atomic void inc() { count++; }
                atomic void dec() { waituntil (count > 0) { count--; } }
            }
        "#;
        let monitor = parse_monitor(src).unwrap();
        let table = check_monitor(&monitor).unwrap();
        let solver = Solver::new();
        let outcome = infer_monitor_invariant(&monitor, &table, &solver);
        let vcgen = VcGen::new(&monitor, &table, &solver);
        // Initiation.
        assert!(vcgen
            .check_triple(
                &Formula::True,
                &monitor.constructor_body(),
                &outcome.invariant
            )
            .is_valid());
        // Consecution for every CCR.
        for ccr in monitor.all_ccrs() {
            let guard = expr_to_formula(&ccr.guard, &table).unwrap();
            let pre = Formula::and(vec![outcome.invariant.clone(), guard]);
            assert!(
                vcgen
                    .check_triple(&pre, &ccr.body, &outcome.invariant)
                    .is_valid(),
                "invariant {} not preserved by {}",
                outcome.invariant,
                monitor.ccr_label(ccr.id)
            );
        }
    }

    #[test]
    fn bounded_buffer_invariant_is_inductive_and_consistent() {
        let src = r#"
            monitor BoundedBuffer(int capacity) requires capacity > 0 {
                int count = 0;
                atomic void put() { waituntil (count < capacity) { count++; } }
                atomic void take() { waituntil (count > 0) { count--; } }
            }
        "#;
        let monitor = parse_monitor(src).unwrap();
        let table = check_monitor(&monitor).unwrap();
        let solver = Solver::new();
        let outcome = infer_monitor_invariant(&monitor, &table, &solver);
        assert!(!outcome.invariant.is_false());
        let vcgen = VcGen::new(&monitor, &table, &solver);
        let requires = expr_to_formula(monitor.requires.as_ref().unwrap(), &table).unwrap();
        assert!(vcgen
            .check_triple(&requires, &monitor.constructor_body(), &outcome.invariant)
            .is_valid());
        for ccr in monitor.all_ccrs() {
            let guard = expr_to_formula(&ccr.guard, &table).unwrap();
            let pre = Formula::and(vec![outcome.invariant.clone(), guard]);
            assert!(vcgen
                .check_triple(&pre, &ccr.body, &outcome.invariant)
                .is_valid());
        }
    }

    #[test]
    fn triple_set_includes_no_signal_and_no_broadcast_goals() {
        let monitor = parse_monitor(
            r#"
            monitor M {
                int x = 0;
                atomic void inc() { x++; }
                atomic void wait() { waituntil (x > 0) { x--; } }
            }
            "#,
        )
        .unwrap();
        let table = check_monitor(&monitor).unwrap();
        let solver = Solver::new();
        let triples = placement_triples(&monitor, &table, &solver);
        assert!(triples
            .iter()
            .any(|t| t.description.starts_with("no-signal")));
        assert!(triples
            .iter()
            .any(|t| t.description.starts_with("no-broadcast")));
    }

    #[test]
    fn invariant_without_useful_candidates_is_true() {
        // A monitor whose triples are all already provable (or hopeless)
        // yields the trivial invariant.
        let (inv, _) = infer(
            r#"
            monitor Flag {
                bool up = false;
                atomic void raise() { up = true; }
                atomic void await_up() { waituntil (up) { skip; } }
            }
            "#,
        );
        assert!(inv.is_true() || !inv.is_false());
    }
}

//! Abductive inference and monitor-invariant inference (paper §5).
//!
//! The paper infers *monitor invariants* — assertions that hold whenever a
//! thread enters or leaves the monitor — by (1) using abduction to propose
//! candidate predicates that would make failing Hoare triples provable and
//! (2) running a monomial predicate-abstraction fixpoint that keeps only the
//! candidates that are genuine invariants (they hold after the constructor and
//! are preserved by every CCR).
//!
//! # Example
//!
//! ```
//! use expresso_abduction::infer_monitor_invariant;
//! use expresso_monitor_lang::{check_monitor, parse_monitor};
//! use expresso_smt::Solver;
//!
//! let monitor = parse_monitor(r#"
//!     monitor RWLock {
//!         int readers = 0;
//!         bool writerIn = false;
//!         atomic void enterReader() { waituntil (!writerIn) { readers++; } }
//!         atomic void exitReader()  { if (readers > 0) readers--; }
//!         atomic void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
//!         atomic void exitWriter()  { writerIn = false; }
//!     }
//! "#).unwrap();
//! let table = check_monitor(&monitor).unwrap();
//! let solver = Solver::new();
//! let outcome = infer_monitor_invariant(&monitor, &table, &solver);
//! // The inferred invariant must at least imply readers >= 0, the fact the
//! // paper highlights as essential for the readers-writers example.
//! use expresso_logic::{Formula, Term};
//! assert!(solver
//!     .check_implies(&outcome.invariant, &Term::var("readers").ge(Term::int(0)))
//!     .is_valid());
//! ```

pub mod abduce;
pub mod invariant;

pub use abduce::{abduce, abduce_ids, AbductionConfig};
pub use invariant::{
    infer_monitor_invariant, infer_monitor_invariant_configured, infer_with_triples,
    infer_with_triples_configured, InvariantOutcome,
};

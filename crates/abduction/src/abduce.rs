//! Abductive inference over Presburger formulas.
//!
//! Given a precondition `P` and a goal `C`, abduction looks for a formula `ψ`
//! such that `P ∧ ψ ⊨ C` and `P ∧ ψ` is satisfiable (Equation 3 of the
//! paper). Following Dillig & Dillig's approach, candidates are obtained by
//! universally quantifying the implication `P ⇒ C` over all but a small set
//! of "kept" variables and eliminating the quantifiers; iterating over kept
//! variable sets of increasing size yields the simplest explanations first.

use expresso_exec::{Executor, Inline, Task};
use expresso_logic::{Formula, FormulaId, Ident, Interner, Subst};
use expresso_smt::Solver;
use expresso_vcgen::WpCache;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Tunables for [`abduce`].
#[derive(Debug, Clone)]
pub struct AbductionConfig {
    /// Maximum number of variables a candidate may mention.
    pub max_kept_vars: usize,
    /// Maximum number of candidate subsets explored.
    pub max_subsets: usize,
    /// Maximum number of candidates returned.
    pub max_results: usize,
    /// The executor candidate-subset evaluations are dispatched on, in
    /// [`max_results`](AbductionConfig::max_results)-sized waves (see
    /// [`abduce_ids`]). `None` (the default) evaluates inline on the calling
    /// thread; the pipeline passes the shared analysis scheduler here, so the
    /// fixpoint's candidate evaluations fan out on the same pool that runs
    /// suite- and pair-level tasks. Results are bit-identical across every
    /// executor: each wave's outcomes are folded back in enumeration order.
    pub executor: Option<Arc<dyn Executor>>,
    /// The WP memo session invariant inference builds its VCs through.
    /// `None` (the default) gives the inference run a fresh private cache;
    /// the pipeline passes the per-analysis session it also hands to
    /// placement, so the fixpoint's consecution rounds and Algorithm 1's
    /// later obligations share wp results (and, through a suite-wide store,
    /// other monitors' structurally identical bodies). The session's store
    /// must belong to the same formula arena as the solver.
    pub wp_cache: Option<Arc<WpCache>>,
}

impl Default for AbductionConfig {
    fn default() -> Self {
        AbductionConfig {
            max_kept_vars: 2,
            max_subsets: 48,
            max_results: 4,
            executor: None,
            wp_cache: None,
        }
    }
}

/// Computes abductive explanations `ψ` with `pre ∧ ψ ⊨ goal` and `pre ∧ ψ`
/// satisfiable.
///
/// Tree-boundary convenience wrapper over [`abduce_ids`]: the arguments are
/// interned once and the resulting ids are reconstructed for the caller.
pub fn abduce(
    solver: &Solver,
    pre: &Formula,
    goal: &Formula,
    config: &AbductionConfig,
) -> Vec<Formula> {
    let interner = solver.interner();
    let pre_id = interner.intern(pre);
    let goal_id = interner.intern(goal);
    abduce_ids(solver, pre_id, goal_id, config)
        .into_iter()
        .map(|id| interner.formula(id))
        .collect()
}

/// Computes abductive explanations entirely over interned formulas: the
/// implication, every Shannon expansion, quantifier elimination (Cooper) and
/// the consistency/sufficiency checks all stay on [`FormulaId`]s against the
/// solver's arena — the fixpoint hot path never reconstructs a `Box` tree.
///
/// Returns candidate ids ordered from most to least preferred (fewer free
/// variables first, then smaller formulas, both read from the arena's
/// memoized per-node tables). The trivially true candidate is never returned;
/// if `pre ⇒ goal` is already valid the result is empty because no
/// strengthening is needed.
pub fn abduce_ids(
    solver: &Solver,
    pre: FormulaId,
    goal: FormulaId,
    config: &AbductionConfig,
) -> Vec<FormulaId> {
    let interner = solver.interner().clone();
    let implication = interner.mk_implies(pre, goal);
    if solver.check_valid_id(implication).is_valid() {
        return Vec::new();
    }
    let mut int_vars: Vec<Ident> = interner.int_vars(implication).into_iter().collect();
    let mut bool_vars: Vec<Ident> = interner.bool_vars(implication).into_iter().collect();
    int_vars.sort();
    bool_vars.sort();
    let all_vars: Vec<Ident> = int_vars.iter().chain(bool_vars.iter()).cloned().collect();

    // Enumerate the kept-variable subsets in preference order (fewer
    // variables first) up to the exploration budget.
    let mut kept_sets: Vec<BTreeSet<Ident>> = Vec::new();
    for size in 1..=config.max_kept_vars.min(all_vars.len()) {
        kept_sets.extend(subsets_of_size(&all_vars, size));
        if kept_sets.len() >= config.max_subsets {
            break;
        }
    }
    kept_sets.truncate(config.max_subsets);

    // Each subset is evaluated independently: quantifier elimination produces
    // the candidate, then the consistency and sufficiency checks accept or
    // reject it. This is the expensive part (Cooper's procedure), so it fans
    // out as executor tasks below.
    let evaluate = |kept: &BTreeSet<Ident>| -> Option<FormulaId> {
        let eliminate: Vec<Ident> = all_vars
            .iter()
            .filter(|v| !kept.contains(*v))
            .cloned()
            .collect();
        let candidate =
            universally_eliminate_ids(solver, &interner, implication, &eliminate, &bool_vars)?;
        let candidate = interner.simplify(candidate);
        if interner.is_true(candidate) || interner.is_false(candidate) {
            return None;
        }
        let strengthened = interner.mk_and(vec![pre, candidate]);
        // ψ must be consistent with the precondition.
        if !solver.check_sat_id(strengthened).is_sat() {
            return None;
        }
        // ψ must actually make the triple go through.
        if !solver.check_implies_ids(strengthened, goal).is_valid() {
            return None;
        }
        Some(candidate)
    };
    // Budget-aware wave dispatch: subsets become executor tasks in
    // `max_results`-sized waves, each wave's outcomes are folded back in
    // enumeration order, and dispatching stops as soon as the result budget
    // is met. The accepted set is therefore exactly the first `max_results`
    // distinct candidates a fully sequential scan would have kept —
    // bit-identical across every executor — while speculation is bounded to
    // one wave instead of the whole subset space.
    let executor: &dyn Executor = config.executor.as_deref().unwrap_or(&Inline);
    let wave = config.max_results.max(1);
    let mut results: Vec<FormulaId> = Vec::new();
    let mut next = 0usize;
    while next < kept_sets.len() && results.len() < config.max_results {
        let end = kept_sets.len().min(next + wave);
        let batch = &kept_sets[next..end];
        let mut slots: Vec<Option<FormulaId>> = vec![None; batch.len()];
        executor.run_batch(
            batch
                .iter()
                .zip(slots.iter_mut())
                .map(|(kept, slot)| Box::new(move || *slot = evaluate(kept)) as Task<'_>)
                .collect(),
        );
        for candidate in slots.into_iter().flatten() {
            if results.len() >= config.max_results {
                break;
            }
            if !results.contains(&candidate) {
                results.push(candidate);
            }
        }
        next = end;
    }
    finalize(&interner, results)
}

fn finalize(interner: &Interner, mut results: Vec<FormulaId>) -> Vec<FormulaId> {
    results.sort_by_key(|&f| (interner.free_vars(f).len(), interner.size(f)));
    results
}

/// Computes `∀ eliminate. formula` over interned ids, eliminating boolean
/// variables by Shannon expansion (DAG-aware arena substitution) and integer
/// variables by Cooper's procedure through the solver's memoized id-based
/// quantifier elimination. Returns `None` when the formula leaves the
/// decidable fragment.
fn universally_eliminate_ids(
    solver: &Solver,
    interner: &Interner,
    formula: FormulaId,
    eliminate: &[Ident],
    bool_vars: &[Ident],
) -> Option<FormulaId> {
    let mut current = formula;
    // Shannon-expand the boolean variables to be eliminated.
    for b in eliminate.iter().filter(|v| bool_vars.contains(v)) {
        let mut true_case = Subst::new();
        true_case.boolean(b.clone(), Formula::True);
        let mut false_case = Subst::new();
        false_case.boolean(b.clone(), Formula::False);
        let true_branch = interner.apply_subst(&true_case, current);
        let false_branch = interner.apply_subst(&false_case, current);
        current = interner.mk_and(vec![true_branch, false_branch]);
    }
    let int_binders: Vec<Ident> = eliminate
        .iter()
        .filter(|v| !bool_vars.contains(v))
        .cloned()
        .collect();
    let quantified = interner.mk_forall(int_binders, current);
    solver.eliminate_quantifiers_id(quantified).ok()
}

/// Enumerates all subsets of `items` with exactly `size` elements.
fn subsets_of_size(items: &[Ident], size: usize) -> Vec<BTreeSet<Ident>> {
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..size).collect();
    if size == 0 || size > items.len() {
        return out;
    }
    loop {
        out.push(indices.iter().map(|&i| items[i].clone()).collect());
        // Advance the combination.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - size {
                indices[i] += 1;
                for j in i + 1..size {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresso_logic::Term;

    fn solver() -> Solver {
        Solver::new()
    }

    #[test]
    fn subsets_enumeration_is_complete() {
        let items: Vec<Ident> = vec!["a".into(), "b".into(), "c".into()];
        assert_eq!(subsets_of_size(&items, 1).len(), 3);
        assert_eq!(subsets_of_size(&items, 2).len(), 3);
        assert_eq!(subsets_of_size(&items, 3).len(), 1);
        assert!(subsets_of_size(&items, 4).is_empty());
    }

    #[test]
    fn no_candidates_when_goal_already_follows() {
        let s = solver();
        let pre = Term::var("x").ge(Term::int(1));
        let goal = Term::var("x").ge(Term::int(0));
        assert!(abduce(&s, &pre, &goal, &AbductionConfig::default()).is_empty());
    }

    #[test]
    fn finds_strengthening_for_readers_writers() {
        // The paper's enterReader triple with I = true:
        //   pre  = !writerIn && !(readers == 0 && !writerIn)
        //   goal = !(readers + 1 == 0 && !writerIn)
        // A correct abductive strengthening constrains `readers` (e.g.
        // readers >= 0 or readers != -1).
        let s = solver();
        let pw = Formula::and(vec![
            Term::var("readers").eq(Term::int(0)),
            Formula::not(Formula::bool_var("writerIn")),
        ]);
        let pw_after = Formula::and(vec![
            Term::var("readers").add(Term::int(1)).eq(Term::int(0)),
            Formula::not(Formula::bool_var("writerIn")),
        ]);
        let pre = Formula::and(vec![
            Formula::not(Formula::bool_var("writerIn")),
            Formula::not(pw),
        ]);
        let goal = Formula::not(pw_after);
        let candidates = abduce(&s, &pre, &goal, &AbductionConfig::default());
        assert!(!candidates.is_empty(), "expected at least one candidate");
        // Every candidate must make the triple valid and be consistent.
        for c in &candidates {
            assert!(s
                .check_implies(&Formula::and(vec![pre.clone(), c.clone()]), &goal)
                .is_valid());
        }
        // At least one candidate follows from readers >= 0 — i.e. it is the
        // kind of fact the constructor establishes.
        let readers_nonneg = Term::var("readers").ge(Term::int(0));
        assert!(candidates
            .iter()
            .any(|c| s.check_implies(&readers_nonneg, c).is_valid()));
    }

    #[test]
    fn candidates_are_consistent_with_precondition() {
        let s = solver();
        // pre: x <= 5, goal: x <= 3. A naive "false" strengthening is rejected;
        // an acceptable candidate is x <= 3 (or stronger but consistent).
        let pre = Term::var("x").le(Term::int(5));
        let goal = Term::var("x").le(Term::int(3));
        let candidates = abduce(&s, &pre, &goal, &AbductionConfig::default());
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!(s
                .check_sat(&Formula::and(vec![pre.clone(), c.clone()]))
                .is_sat());
            assert!(s
                .check_implies(&Formula::and(vec![pre.clone(), c.clone()]), &goal)
                .is_valid());
        }
    }

    #[test]
    fn prefers_candidates_with_fewer_variables() {
        let s = solver();
        // pre: true, goal: x >= 0 || y > 10. The single-variable candidate
        // x >= 0 (or y > 10) should be ranked before any two-variable one.
        let pre = Formula::True;
        let goal = Formula::or(vec![
            Term::var("x").ge(Term::int(0)),
            Term::var("y").gt(Term::int(10)),
        ]);
        let candidates = abduce(&s, &pre, &goal, &AbductionConfig::default());
        assert!(!candidates.is_empty());
        assert!(candidates[0].free_vars().len() <= 1);
    }
}
